/**
 * @file
 * Combined accelerator stage between event delivery and the lifeguard
 * (Figure 2): Inheritance Tracking, Idempotent Filters and the Metadata
 * TLB, configured by the lifeguard's policy, plus the parallel-monitoring
 * mechanisms of section 4 (delayed advertising, ConflictAlert-driven
 * flushes, threshold flushes, stall flushes).
 */

#ifndef PARALOG_ACCEL_ACCEL_UNIT_HPP
#define PARALOG_ACCEL_ACCEL_UNIT_HPP

#include <vector>

#include "accel/accel_config.hpp"
#include "accel/idempotent_filter.hpp"
#include "accel/it_table.hpp"
#include "accel/lg_event.hpp"
#include "accel/mtlb.hpp"
#include "sim/config.hpp"

namespace paralog {

class AccelUnit
{
  public:
    AccelUnit(const SimConfig &cfg, const LifeguardPolicy &policy);

    /**
     * Run one delivered record through the accelerators. Events that must
     * reach the lifeguard are appended to @p out (possibly none if the
     * record was absorbed, possibly several if state was flushed).
     */
    void process(const EventRecord &rec, bool races_syscall,
                 std::vector<LgEvent> &out);

    /**
     * The lifeguard thread is stalled (dependence / CA / version): flush
     * IT so an accurate progress can be published — this is the deadlock
     * avoidance rule of section 4.2.
     */
    void onStall(std::vector<LgEvent> &out);

    /**
     * Delayed advertising: smallest record ID still held live by
     * accelerator state, or kInvalidRecord if none. The published
     * progress must not exceed this value.
     */
    RecordId delayedMinRid() const;

    /**
     * Enforce the advertising threshold: if progress would lag the last
     * processed record by more than the configured threshold, flush.
     */
    void maybeThresholdFlush(RecordId last_processed,
                             std::vector<LgEvent> &out);

    MetadataTlb &mtlb() { return mtlb_; }
    ItTable &it() { return it_; }
    IdempotentFilter &ifilter() { return if_; }

    bool itEnabled() const { return itEnabled_; }
    bool ifEnabled() const { return ifEnabled_; }

    /** Thread whose registers the IT table currently describes (differs
     *  from the record tid only around timesliced thread switches). */
    ThreadId regOwner() const { return regOwner_; }

  private:
    void highLevelFlush(HighLevelKind kind, const AddrRange &range,
                        std::vector<LgEvent> &out);

    const SimConfig &cfg_;
    LifeguardPolicy policy_;
    bool itEnabled_;
    bool ifEnabled_;
    ItTable it_;
    IdempotentFilter if_;
    MetadataTlb mtlb_;
    ThreadId regOwner_ = kInvalidThread;
};

} // namespace paralog

#endif // PARALOG_ACCEL_ACCEL_UNIT_HPP
