/**
 * @file
 * Events delivered to lifeguard handlers after accelerator processing.
 * Inheritance Tracking collapses chains of loads/moves/stores into
 * memory-to-memory transfer events (Figure 3); filters absorb redundant
 * checks; everything else is a direct translation of the log record.
 */

#ifndef PARALOG_ACCEL_LG_EVENT_HPP
#define PARALOG_ACCEL_LG_EVENT_HPP

#include <array>
#include <cstdint>

#include "app/event.hpp"
#include "common/types.hpp"

namespace paralog {

enum class LgEventType : std::uint8_t
{
    kNone,
    // Direct instruction-level translations.
    kLoad,  ///< reg dst <- metadata(addr)
    kStore, ///< metadata(addr) <- reg src
    kMovRR,
    kMovImm,
    kAlu,
    kJumpReg, ///< critical use of register src
    // IT-synthesized events.
    kMemToMem,        ///< metadata(addr) <- metadata(srcAddr) (Figure 3)
    kMemSetConst,     ///< metadata(addr) <- "constant" state
    kRegInheritMem,   ///< reg dst's metadata <- metadata(srcAddr) (flush)
    kRegInheritConst, ///< reg dst's metadata <- constant (flush)
    kJumpMem,         ///< critical use resolved to metadata(srcAddr)
    // High-level events.
    kMalloc,
    kFree,
    kSyscallBegin,
    kSyscallEnd,
    kLockAcquire,
    kLockRelease,
    kBarrierPass,
    kThreadDone,
    kThreadSwitch,
    kCaFlush,        ///< ConflictAlert consumed (accelerators flushed)
    kProduceVersion, ///< TSO: snapshot metadata(addr) under 'version'
};

/** One inherits-from memory range of an IT-synthesized event. */
struct MetaSrc
{
    Addr addr = 0;
    std::uint8_t size = 0;
};

/** Maximum inherits-from ranges an IT row can track (stencil kernels
 *  combine up to four neighbours). */
inline constexpr unsigned kItMaxSources = 4;

struct LgEvent
{
    LgEventType type = LgEventType::kNone;
    ThreadId tid = kInvalidThread;
    RecordId rid = kInvalidRecord;
    RegId dst = 0;
    RegId src = 0;
    std::uint8_t size = 0;
    Addr addr = 0; ///< destination address
    /// Inherits-from ranges (kMemToMem / kRegInheritMem / kJumpMem).
    std::array<MetaSrc, kItMaxSources> srcs{};
    std::uint8_t nsrcs = 0;
    std::uint64_t value = 0;
    AddrRange range{};
    SyscallKind syscall = SyscallKind::kNone;
    VersionTag version{};
    bool consumesVersion = false;
    bool racesSyscall = false; ///< range-table hit (section 5.4)
};

const char *toString(LgEventType t);

} // namespace paralog

#endif // PARALOG_ACCEL_LG_EVENT_HPP
