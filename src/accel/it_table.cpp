#include "accel/it_table.hpp"

#include "common/logging.hpp"

namespace paralog {

namespace {

/** Merge the sources of two rows; returns false on overflow. */
bool
mergeSources(ItTable::Row &dst, const ItTable::Row &src)
{
    for (unsigned i = 0; i < src.nsrc; ++i) {
        bool dup = false;
        for (unsigned j = 0; j < dst.nsrc; ++j) {
            if (dst.src[j].addr == src.src[i].addr &&
                dst.src[j].size == src.src[i].size) {
                // Same range: keep the older rid (conservative).
                if (src.src[i].rid < dst.src[j].rid)
                    dst.src[j].rid = src.src[i].rid;
                dup = true;
                break;
            }
        }
        if (dup)
            continue;
        if (dst.nsrc >= kItMaxSources)
            return false;
        dst.src[dst.nsrc++] = src.src[i];
    }
    return true;
}

/** Copy a row's sources into a delivered event. */
void
copySources(LgEvent &ev, const ItTable::Row &row)
{
    ev.nsrcs = row.nsrc;
    for (unsigned i = 0; i < row.nsrc; ++i)
        ev.srcs[i] = MetaSrc{row.src[i].addr, row.src[i].size};
}

} // namespace

LgEvent
ItTable::inheritEvent(RegId reg, const Row &row)
{
    LgEvent ev;
    ev.dst = reg;
    if (row.state == RowState::kConst) {
        ev.type = LgEventType::kRegInheritConst;
    } else {
        ev.type = LgEventType::kRegInheritMem;
        copySources(ev, row);
        ev.size = row.src[0].size;
    }
    return ev;
}

void
ItTable::flushRow(RegId reg, std::vector<LgEvent> &out)
{
    Row &row = rows_[reg];
    if (row.state == RowState::kInvalid)
        return;
    out.push_back(inheritEvent(reg, row));
    row = Row{};
    stats.counter("row_flushes").inc();
}

void
ItTable::flushAll(std::vector<LgEvent> &out)
{
    for (RegId r = 0; r < kNumRegs; ++r)
        flushRow(r, out);
    stats.counter("full_flushes").inc();
}

void
ItTable::flushOlderThan(RecordId min_rid, std::vector<LgEvent> &out)
{
    for (RegId r = 0; r < kNumRegs; ++r) {
        const Row &row = rows_[r];
        for (unsigned i = 0; i < row.nsrc; ++i) {
            if (row.src[i].rid <= min_rid) {
                flushRow(r, out);
                stats.counter("threshold_flushes").inc();
                break;
            }
        }
    }
}

void
ItTable::retireRow(RegId reg, std::vector<LgEvent> &out)
{
    // A new absorption is retargeting this register. Propagation-only
    // metadata can drop the old row (the overwrite supersedes it), but
    // under itFlushOnOverwrite the row's deferred checks must be
    // delivered first — otherwise whether they ever run depends on an
    // unrelated flush racing the overwrite (see LifeguardPolicy).
    if (flushOnOverwrite_)
        flushRow(reg, out);
}

void
ItTable::flushOverlapping(Addr addr, unsigned size,
                          std::vector<LgEvent> &out, RegId exempt)
{
    for (RegId r = 0; r < kNumRegs; ++r) {
        if (r == exempt)
            continue;
        Row &row = rows_[r];
        if (row.state == RowState::kAddr && row.overlaps(addr, size)) {
            flushRow(r, out);
            stats.counter("local_conflicts").inc();
        }
    }
}

RecordId
ItTable::minRid() const
{
    RecordId min = kInvalidRecord;
    for (const Row &row : rows_) {
        for (unsigned i = 0; i < row.nsrc; ++i) {
            if (row.src[i].rid < min)
                min = row.src[i].rid;
        }
    }
    return min;
}

bool
ItTable::empty() const
{
    for (const Row &row : rows_) {
        if (row.state != RowState::kInvalid)
            return false;
    }
    return true;
}

bool
ItTable::process(const EventRecord &rec, std::vector<LgEvent> &out)
{
    switch (rec.type) {
      case EventType::kLoad: {
        if (rec.consumesVersion) {
            // TSO versioned access: IT cannot distinguish metadata
            // versions, so deliver the load itself and any pending state
            // inheriting from the same address (section 5.5).
            flushOverlapping(rec.addr, rec.size, out);
            retireRow(rec.dst, out);
            rows_[rec.dst] = Row{};
            return false;
        }
        retireRow(rec.dst, out);
        Row row;
        row.state = RowState::kAddr;
        row.nsrc = 1;
        row.src[0] = Source{rec.addr, rec.size, rec.rid};
        rows_[rec.dst] = row;
        stats.counter("absorbed_loads").inc();
        return true;
      }

      case EventType::kMovImm: {
        retireRow(rec.dst, out);
        Row row;
        row.state = RowState::kConst;
        rows_[rec.dst] = row;
        stats.counter("absorbed_movs").inc();
        return true;
      }

      case EventType::kMovRR:
        if (rows_[rec.src].state == RowState::kInvalid) {
            // The lifeguard's own register metadata is current for src;
            // deliver the copy so dst stays current there too.
            retireRow(rec.dst, out);
            rows_[rec.dst] = Row{};
            return false;
        }
        if (rec.dst != rec.src)
            retireRow(rec.dst, out);
        rows_[rec.dst] = rows_[rec.src];
        stats.counter("absorbed_movs").inc();
        return true;

      case EventType::kAlu: {
        const Row &s = rows_[rec.src];
        Row &d = rows_[rec.dst];
        if (d.state == RowState::kInvalid || s.state == RowState::kInvalid) {
            // Unknown state: fall back to the lifeguard's own register
            // metadata by flushing and delivering the ALU event.
            flushRow(rec.src, out);
            flushRow(rec.dst, out);
            return false;
        }
        if (s.state == RowState::kConst) {
            // Metadata unchanged by a constant operand.
            stats.counter("absorbed_alu").inc();
            return true;
        }
        if (d.state == RowState::kConst) {
            d = s;
            stats.counter("absorbed_alu").inc();
            return true;
        }
        // Both inherit from memory: merge the source sets (<= 2 total).
        Row merged = d;
        if (mergeSources(merged, s)) {
            d = merged;
            stats.counter("absorbed_alu").inc();
            return true;
        }
        // More than two distinct sources: give up on tracking dst.
        flushRow(rec.src, out);
        flushRow(rec.dst, out);
        stats.counter("alu_overflows").inc();
        return false;
      }

      case EventType::kStore: {
        // Local conflict detection (sequential-setting rule retained):
        // the store may overwrite an inherits-from location. The stored
        // register's own row may be exempt: a read-modify-write through
        // the same register is idempotent under union/intersection
        // metadata combining (meta(A) after mem_to_mem(A, {A, ...})
        // equals the row's own state), so the row remains accurate.
        // State-transition metadata (MemCheck init bits) is not a
        // lattice — there a deferred check crossing its own store
        // changes outcome with flush timing, so the lifeguard's policy
        // disables the exemption and the row flushes first.
        flushOverlapping(rec.addr, rec.size, out,
                         exemptSelfRmw_ ? rec.src : kNoReg);

        const Row &s = rows_[rec.src];
        LgEvent ev;
        ev.addr = rec.addr;
        ev.size = rec.size;
        switch (s.state) {
          case RowState::kAddr:
            ev.type = LgEventType::kMemToMem;
            copySources(ev, s);
            out.push_back(ev);
            stats.counter("mem_to_mem").inc();
            return true;
          case RowState::kConst:
            ev.type = LgEventType::kMemSetConst;
            out.push_back(ev);
            stats.counter("set_const").inc();
            return true;
          case RowState::kInvalid:
            return false; // deliver the raw store
        }
        return false;
      }

      case EventType::kJump: {
        const Row &s = rows_[rec.src];
        if (s.state == RowState::kConst) {
            // Provably constant: the check passes without delivery.
            stats.counter("absorbed_jumps").inc();
            return true;
        }
        if (s.state == RowState::kAddr) {
            LgEvent ev;
            ev.type = LgEventType::kJumpMem;
            copySources(ev, s);
            ev.size = s.src[0].size;
            ev.src = rec.src;
            out.push_back(ev);
            return true;
        }
        return false;
      }

      default:
        return false; // not an IT-relevant record
    }
}

} // namespace paralog
