/**
 * @file
 * Per-lifeguard policy for accelerators, event capture and ConflictAlert
 * subscription, declared by each lifeguard at initialization time
 * (sections 4.4 and 5.4: "lifeguards specify which types of high-level
 * events they care about and ... whether a CA-Begin or CA-End record ...
 * should invalidate or flush IT, IF, and/or M-TLB").
 */

#ifndef PARALOG_ACCEL_ACCEL_CONFIG_HPP
#define PARALOG_ACCEL_ACCEL_CONFIG_HPP

#include <cstdint>

namespace paralog {

struct LifeguardPolicy
{
    // Which accelerators this lifeguard benefits from.
    bool usesIt = false;
    bool usesIf = false;
    bool usesMtlb = true;

    // Capture-side event interests (the event mux of Figure 1).
    bool wantsRegOps = true;  ///< mov/alu events
    bool wantsJumps = true;
    bool heapOnly = false;    ///< memory events restricted to the heap

    // IF configuration.
    bool ifFilterLoads = true;
    bool ifFilterStores = true;
    bool ifInvalidateOnLocalWrite = false;
    bool ifDelayedAdvertising = false;

    // ConflictAlert subscription (which wrapper events broadcast).
    bool caOnMalloc = true;
    bool caOnFree = true;
    bool caOnSyscall = true;

    // Accelerator flushing on CA records / local high-level events.
    bool itFlushOnAlloc = true;   ///< malloc/free conflict with IT state
    bool ifInvalidateOnAlloc = true;
    bool mtlbFlushOnFree = false; ///< only if metadata pages deallocated
    bool itFlushOnSyscall = true;

    // Metadata geometry: shadow bits per application byte (1, 2, 4, 8).
    std::uint32_t metadataBitsPerByte = 1;
};

} // namespace paralog

#endif // PARALOG_ACCEL_ACCEL_CONFIG_HPP
