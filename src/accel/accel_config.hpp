/**
 * @file
 * Per-lifeguard policy for accelerators, event capture and ConflictAlert
 * subscription, declared by each lifeguard at initialization time
 * (sections 4.4 and 5.4: "lifeguards specify which types of high-level
 * events they care about and ... whether a CA-Begin or CA-End record ...
 * should invalidate or flush IT, IF, and/or M-TLB").
 */

#ifndef PARALOG_ACCEL_ACCEL_CONFIG_HPP
#define PARALOG_ACCEL_ACCEL_CONFIG_HPP

#include <cstdint>

namespace paralog {

struct LifeguardPolicy
{
    // Which accelerators this lifeguard benefits from.
    bool usesIt = false;
    bool usesIf = false;
    bool usesMtlb = true;

    // Capture-side event interests (the event mux of Figure 1).
    bool wantsRegOps = true;  ///< mov/alu events
    bool wantsJumps = true;
    bool heapOnly = false;    ///< memory events restricted to the heap

    // IF configuration.
    bool ifFilterLoads = true;
    bool ifFilterStores = true;
    bool ifInvalidateOnLocalWrite = false;
    bool ifDelayedAdvertising = false;

    // ConflictAlert subscription (which wrapper events broadcast).
    bool caOnMalloc = true;
    bool caOnFree = true;
    bool caOnSyscall = true;

    // Whether a store may leave the stored register's own IT row live
    // (the self-RMW exemption). Sound only when the lifeguard's
    // metadata combining is idempotent (union/intersection lattices:
    // TaintCheck) — for state-transition metadata like MemCheck's
    // init bit, a deferred check crossing its own initializing store
    // changes outcome with flush timing, so such lifeguards must
    // clear this and take the flush.
    bool itExemptSelfRmw = true;

    // Whether overwriting a live IT row (a new load/mov retargeting the
    // same register) must flush the old row first. Propagation-only
    // lifeguards (TaintCheck) can drop the stale row: its pending
    // deliveries only duplicate metadata the overwrite supersedes. A
    // checking lifeguard (MemCheck) cannot — the dropped row carries a
    // deferred uninit-read check, and whether an unrelated stall flush
    // happens to rescue it before the overwrite is delivery-schedule
    // timing, making the set of reported violations nondeterministic
    // (and silently losing checks even sequentially).
    bool itFlushOnOverwrite = false;

    // Accelerator flushing on CA records / local high-level events.
    bool itFlushOnAlloc = true;   ///< malloc/free conflict with IT state
    bool ifInvalidateOnAlloc = true;
    bool mtlbFlushOnFree = false; ///< only if metadata pages deallocated
    bool itFlushOnSyscall = true;

    // Metadata geometry: shadow bits per application byte (1, 2, 4, 8).
    std::uint32_t metadataBitsPerByte = 1;
};

} // namespace paralog

#endif // PARALOG_ACCEL_ACCEL_CONFIG_HPP
