/**
 * @file
 * Idempotent Filters (IF) accelerator (sections 2 and 4.1).
 *
 * Caches recently seen check events; a hit means the same check was
 * performed since the last invalidation and the event is redundant.
 * Entries carry record IDs for delayed advertising (the general
 * mechanism; whether it is needed depends on the lifeguard). The cache
 * is invalidated by ConflictAlert records (e.g. malloc/free for
 * AddrCheck) and optionally by local stores.
 */

#ifndef PARALOG_ACCEL_IDEMPOTENT_FILTER_HPP
#define PARALOG_ACCEL_IDEMPOTENT_FILTER_HPP

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace paralog {

class IdempotentFilter
{
  public:
    explicit IdempotentFilter(std::uint32_t entries) : capacity_(entries) {}

    /**
     * Present a check of [addr, addr+size) (class distinguishes read
     * checks from write checks). Returns true if the check hit (the
     * event is redundant and may be absorbed).
     */
    bool checkAndInsert(Addr addr, unsigned size, bool is_write,
                        RecordId rid);

    void invalidateAll();
    void invalidateOverlapping(Addr addr, unsigned size);
    void invalidateRange(const AddrRange &range);

    /** Minimum record ID of a live entry (delayed advertising). */
    RecordId minRid() const;

    std::size_t size() const { return entries_.size(); }

    StatSet stats{"if"};

  private:
    struct Key
    {
        Addr addr;
        unsigned size;
        bool isWrite;
        bool operator==(const Key &) const = default;
    };

    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            return std::hash<Addr>()(k.addr * 2654435761ULL) ^
                   (k.size << 1) ^ (k.isWrite ? 0x9e37 : 0);
        }
    };

    struct Entry
    {
        RecordId rid;
        std::list<Key>::iterator lruIt;
    };

    std::uint32_t capacity_;
    std::unordered_map<Key, Entry, KeyHash> entries_;
    std::list<Key> lru_; ///< front = most recent
};

} // namespace paralog

#endif // PARALOG_ACCEL_IDEMPOTENT_FILTER_HPP
