/**
 * @file
 * Idempotent Filters (IF) accelerator (sections 2 and 4.1).
 *
 * Caches recently seen check events; a hit means the same check was
 * performed since the last invalidation and the event is redundant.
 * Entries carry record IDs for delayed advertising (the general
 * mechanism; whether it is needed depends on the lifeguard). The cache
 * is invalidated by ConflictAlert records (e.g. malloc/free for
 * AddrCheck) and optionally by local stores.
 *
 * Modelled as an exact-LRU cache of (addr, size, is_write) keys. The
 * implementation is a fixed node array with an intrusive LRU list and
 * linear key search: the entry count is hardware-small (64), so a flat
 * scan beats a node-based map with its two allocations per miss — this
 * sits on the once-per-record delivery path.
 */

#ifndef PARALOG_ACCEL_IDEMPOTENT_FILTER_HPP
#define PARALOG_ACCEL_IDEMPOTENT_FILTER_HPP

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace paralog {

class IdempotentFilter
{
  public:
    explicit IdempotentFilter(std::uint32_t entries);

    /**
     * Present a check of [addr, addr+size) (class distinguishes read
     * checks from write checks). Returns true if the check hit (the
     * event is redundant and may be absorbed).
     */
    bool checkAndInsert(Addr addr, unsigned size, bool is_write,
                        RecordId rid);

    void invalidateAll();
    void invalidateOverlapping(Addr addr, unsigned size);
    void invalidateRange(const AddrRange &range);

    /**
     * Invalidate checks made stale by a TSO versioned access: the
     * consume-version annotation proves a concurrent conflicting
     * writer, so a cached check of these bytes predates the conflict
     * and must not absorb later ones. Counted separately
     * ("version_invalidations") so TSO livelock diagnosis can tell
     * version traffic from allocation traffic.
     */
    void invalidateVersioned(Addr addr, unsigned size);

    /** Minimum record ID of a live entry (delayed advertising). */
    RecordId minRid() const;

    std::size_t size() const { return used_; }

    StatSet stats{"if"};

  private:
    static constexpr std::uint16_t kNil = 0xFFFF;

    /** (size << 2) | (is_write << 1) | used — 0 for free slots, so a
     *  single compare rejects both mismatches and unused entries. */
    static std::uint64_t
    sideKey(unsigned size, bool is_write)
    {
        return (static_cast<std::uint64_t>(size) << 2) |
               (is_write ? 2u : 0u) | 1u;
    }

    void unlink(std::uint16_t i);
    void linkFront(std::uint16_t i);
    void release(std::uint16_t i);

    std::uint32_t capacity_;
    /// Struct-of-arrays: the key scan touches only addrs_/sideKeys_
    /// (tight, vectorizable); LRU links and rids live apart.
    std::vector<Addr> addrs_;
    std::vector<std::uint64_t> sideKeys_;
    std::vector<RecordId> rids_;
    std::vector<std::uint16_t> prev_;
    std::vector<std::uint16_t> next_;
    std::uint16_t head_ = kNil; ///< most recently used
    std::uint16_t tail_ = kNil; ///< least recently used
    std::uint16_t free_ = kNil; ///< free list through next_
    std::size_t used_ = 0;
};

} // namespace paralog

#endif // PARALOG_ACCEL_IDEMPOTENT_FILTER_HPP
