/**
 * @file
 * Inheritance Tracking (IT) accelerator, parallel-monitoring version
 * (sections 2, 4.1, 4.2 and Figure 3).
 *
 * IT tracks, per application register, where the register's metadata was
 * inherited from: up to two memory addresses (covering binary ALU
 * operations), the constant state, or unknown. Loads, register moves,
 * constant writes and most ALU operations are absorbed; a store through
 * a tracked register is delivered as a single memory-to-memory transfer
 * event carrying the inherits-from addresses.
 *
 * Parallel-monitoring additions:
 *  - every tracked address carries the record ID of the inheriting
 *    access; the *delayed advertising* progress of the lifeguard is
 *    min(row RIDs) - 1, so remote threads cannot run past events whose
 *    metadata reads are still pending in the table (section 4.2);
 *  - the table is flushed on dependence stalls (deadlock avoidance), on
 *    ConflictAlert records (high-level remote conflicts), and when the
 *    advertising lag exceeds a threshold.
 */

#ifndef PARALOG_ACCEL_IT_TABLE_HPP
#define PARALOG_ACCEL_IT_TABLE_HPP

#include <array>
#include <vector>

#include "accel/lg_event.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "isa/inst.hpp"

namespace paralog {

class ItTable
{
  public:
    enum class RowState : std::uint8_t
    {
        kInvalid, ///< lifeguard-side register metadata is current
        kConst,   ///< register metadata is the "constant" state
        kAddr,    ///< register inherits from 1-2 memory ranges
    };

    struct Source
    {
        Addr addr = 0;
        std::uint8_t size = 0;
        RecordId rid = kInvalidRecord;
    };

    struct Row
    {
        RowState state = RowState::kInvalid;
        std::uint8_t nsrc = 0;
        std::array<Source, kItMaxSources> src{};

        bool
        overlaps(Addr addr, unsigned size) const
        {
            for (unsigned i = 0; i < nsrc; ++i) {
                if (src[i].addr < addr + size &&
                    addr < src[i].addr + src[i].size)
                    return true;
            }
            return false;
        }
    };

    /**
     * Process one instruction-level record; absorbed events append
     * nothing, transformations/flushes append delivered events to @p out.
     * Returns true if the original record itself was absorbed.
     */
    bool process(const EventRecord &rec, std::vector<LgEvent> &out);

    /** Minimum record ID held live in the table (delayed advertising). */
    RecordId minRid() const;

    /** Flush one row: deliver its state to the lifeguard, then clear. */
    void flushRow(RegId reg, std::vector<LgEvent> &out);

    /** Flush the whole table (dependence stall / ConflictAlert). */
    void flushAll(std::vector<LgEvent> &out);

    /** Flush only rows holding a record ID at or below @p min_rid
     *  (selective threshold flush: fresh rows keep absorbing). */
    void flushOlderThan(RecordId min_rid, std::vector<LgEvent> &out);

    /**
     * Flush rows whose inherits-from ranges overlap [addr, size).
     * @param exempt register whose row is exempt (self-RMW through the
     *        stored register is idempotent under union/intersection
     *        metadata combining; pass kNoReg for no exemption)
     */
    void flushOverlapping(Addr addr, unsigned size,
                          std::vector<LgEvent> &out,
                          RegId exempt = kNoReg);

    /** Policy knob: whether a store leaves the stored register's own
     *  row live (LifeguardPolicy::itExemptSelfRmw). */
    void setExemptSelfRmw(bool exempt) { exemptSelfRmw_ = exempt; }

    /** Policy knob: whether retargeting a register flushes its old row
     *  instead of dropping it (LifeguardPolicy::itFlushOnOverwrite). */
    void setFlushOnOverwrite(bool flush) { flushOnOverwrite_ = flush; }

    const Row &row(RegId reg) const { return rows_[reg]; }

    /** Any row currently holding inherits-from state? */
    bool empty() const;

    StatSet stats{"it"};

  private:
    static LgEvent inheritEvent(RegId reg, const Row &row);

    /** Flush-or-drop the row a new absorption is about to replace. */
    void retireRow(RegId reg, std::vector<LgEvent> &out);

    std::array<Row, kNumRegs> rows_{};
    bool exemptSelfRmw_ = true;
    bool flushOnOverwrite_ = false;
};

} // namespace paralog

#endif // PARALOG_ACCEL_IT_TABLE_HPP
