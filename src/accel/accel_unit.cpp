#include "accel/accel_unit.hpp"

#include "common/logging.hpp"

namespace paralog {

AccelUnit::AccelUnit(const SimConfig &cfg, const LifeguardPolicy &policy)
    : cfg_(cfg), policy_(policy),
      itEnabled_(cfg.accel.inheritanceTracking && policy.usesIt),
      ifEnabled_(cfg.accel.idempotentFilter && policy.usesIf),
      if_(cfg.accel.ifEntries),
      mtlb_(cfg.accel.mtlbEntries,
            cfg.accel.metadataTlb && policy.usesMtlb)
{
    it_.setExemptSelfRmw(policy.itExemptSelfRmw);
    it_.setFlushOnOverwrite(policy.itFlushOnOverwrite);
}

void
AccelUnit::highLevelFlush(HighLevelKind kind, const AddrRange &range,
                          std::vector<LgEvent> &out)
{
    switch (kind) {
      case HighLevelKind::kMallocEnd:
      case HighLevelKind::kFreeBegin:
        if (itEnabled_ && policy_.itFlushOnAlloc)
            it_.flushAll(out);
        if (ifEnabled_ && policy_.ifInvalidateOnAlloc)
            if_.invalidateAll();
        if (kind == HighLevelKind::kFreeBegin && policy_.mtlbFlushOnFree)
            mtlb_.flushRange(range);
        break;
      case HighLevelKind::kSyscallBegin:
      case HighLevelKind::kSyscallEnd:
        if (itEnabled_ && policy_.itFlushOnSyscall)
            it_.flushAll(out);
        break;
    }
}

void
AccelUnit::process(const EventRecord &rec, bool races_syscall,
                   std::vector<LgEvent> &out)
{
    const std::size_t first_new = out.size();

    if (rec.type != EventType::kThreadSwitch &&
        rec.tid != kInvalidThread) {
        regOwner_ = rec.tid;
    }

    switch (rec.type) {
      case EventType::kLoad:
      case EventType::kStore:
      case EventType::kMovRR:
      case EventType::kMovImm:
      case EventType::kAlu:
      case EventType::kJump: {
        bool absorbed = false;
        if (itEnabled_)
            absorbed = it_.process(rec, out);

        if (!absorbed && ifEnabled_ && rec.isMemAccess()) {
            if (rec.consumesVersion) {
                // Versioned access: never absorbed (the check is not
                // idempotent across the conflict), and any cached
                // check of these bytes is stale — a hit would absorb a
                // post-conflict check against pre-conflict state.
                if_.invalidateVersioned(rec.addr, rec.size);
            } else {
                bool is_write = (rec.type == EventType::kStore);
                bool filterable = is_write ? policy_.ifFilterStores
                                           : policy_.ifFilterLoads;
                if (policy_.ifInvalidateOnLocalWrite && is_write)
                    if_.invalidateOverlapping(rec.addr, rec.size);
                if (filterable &&
                    if_.checkAndInsert(rec.addr, rec.size, is_write,
                                       rec.rid))
                    absorbed = true;
            }
        }

        if (!absorbed) {
            LgEvent ev;
            switch (rec.type) {
              case EventType::kLoad: ev.type = LgEventType::kLoad; break;
              case EventType::kStore: ev.type = LgEventType::kStore; break;
              case EventType::kMovRR: ev.type = LgEventType::kMovRR; break;
              case EventType::kMovImm:
                ev.type = LgEventType::kMovImm;
                break;
              case EventType::kAlu: ev.type = LgEventType::kAlu; break;
              case EventType::kJump:
                ev.type = LgEventType::kJumpReg;
                break;
              default: break;
            }
            ev.dst = rec.dst;
            ev.src = rec.src;
            ev.addr = rec.addr;
            ev.size = rec.size;
            ev.value = rec.value;
            ev.consumesVersion = rec.consumesVersion;
            ev.version = rec.version;
            out.push_back(ev);
        }
        break;
      }

      case EventType::kMallocEnd: {
        highLevelFlush(HighLevelKind::kMallocEnd, rec.range, out);
        LgEvent ev;
        ev.type = LgEventType::kMalloc;
        ev.range = rec.range;
        out.push_back(ev);
        break;
      }

      case EventType::kFreeBegin: {
        highLevelFlush(HighLevelKind::kFreeBegin, rec.range, out);
        LgEvent ev;
        ev.type = LgEventType::kFree;
        ev.range = rec.range;
        out.push_back(ev);
        break;
      }

      case EventType::kSyscallBegin:
      case EventType::kSyscallEnd: {
        HighLevelKind kind = (rec.type == EventType::kSyscallBegin)
                                 ? HighLevelKind::kSyscallBegin
                                 : HighLevelKind::kSyscallEnd;
        highLevelFlush(kind, rec.range, out);
        LgEvent ev;
        ev.type = (rec.type == EventType::kSyscallBegin)
                      ? LgEventType::kSyscallBegin
                      : LgEventType::kSyscallEnd;
        ev.range = rec.range;
        ev.syscall = rec.syscall;
        out.push_back(ev);
        break;
      }

      case EventType::kLockAcquire:
      case EventType::kLockRelease:
      case EventType::kBarrierPass:
      case EventType::kThreadDone: {
        LgEvent ev;
        switch (rec.type) {
          case EventType::kLockAcquire:
            ev.type = LgEventType::kLockAcquire;
            break;
          case EventType::kLockRelease:
            ev.type = LgEventType::kLockRelease;
            break;
          case EventType::kBarrierPass:
            ev.type = LgEventType::kBarrierPass;
            break;
          default:
            ev.type = LgEventType::kThreadDone;
            break;
        }
        ev.addr = rec.addr;
        out.push_back(ev);
        break;
      }

      case EventType::kThreadSwitch: {
        // Timesliced mode: the register file changes hands, so IT state
        // is stale (the sequential-platform context-switch rule). The
        // flushed rows describe the *outgoing* thread's registers.
        if (itEnabled_) {
            it_.flushAll(out);
            for (std::size_t i = first_new; i < out.size(); ++i) {
                out[i].tid = regOwner_;
                out[i].rid = rec.rid;
            }
        }
        LgEvent ev;
        ev.type = LgEventType::kThreadSwitch;
        ev.value = rec.value;
        out.push_back(ev);
        regOwner_ = static_cast<ThreadId>(rec.value);
        break;
      }

      case EventType::kCaBegin:
      case EventType::kCaEnd: {
        highLevelFlush(rec.caKind, rec.range, out);
        LgEvent ev;
        ev.type = LgEventType::kCaFlush;
        ev.range = rec.range;
        ev.value = rec.value;
        out.push_back(ev);
        break;
      }

      case EventType::kProduceVersion: {
        // IT/IF state caching this address is version-ambiguous: flush.
        if (itEnabled_)
            it_.flushOverlapping(rec.addr, rec.size, out);
        if (ifEnabled_)
            if_.invalidateOverlapping(rec.addr, rec.size);
        LgEvent ev;
        ev.type = LgEventType::kProduceVersion;
        ev.addr = rec.addr;
        ev.size = rec.size;
        ev.version = rec.version;
        out.push_back(ev);
        break;
      }

      case EventType::kNone:
        break;
    }

    // Stamp identity and range-table race info on everything delivered.
    for (std::size_t i = first_new; i < out.size(); ++i) {
        if (out[i].tid == kInvalidThread)
            out[i].tid = rec.tid;
        out[i].rid = rec.rid;
        if (out[i].type == LgEventType::kLoad ||
            out[i].type == LgEventType::kStore ||
            out[i].type == LgEventType::kMemToMem) {
            out[i].racesSyscall = races_syscall;
        }
    }
}

void
AccelUnit::onStall(std::vector<LgEvent> &out)
{
    if (itEnabled_)
        it_.flushAll(out);
    if (ifEnabled_ && policy_.ifDelayedAdvertising)
        if_.invalidateAll();
}

RecordId
AccelUnit::delayedMinRid() const
{
    RecordId min = kInvalidRecord;
    if (itEnabled_)
        min = std::min(min, it_.minRid());
    if (ifEnabled_ && policy_.ifDelayedAdvertising)
        min = std::min(min, if_.minRid());
    return min;
}

void
AccelUnit::maybeThresholdFlush(RecordId last_processed,
                               std::vector<LgEvent> &out)
{
    RecordId min = delayedMinRid();
    if (min == kInvalidRecord)
        return;
    if (last_processed > min &&
        last_processed - min > cfg_.accel.advertiseThreshold) {
        RecordId cutoff = last_processed - cfg_.accel.advertiseThreshold;
        if (itEnabled_)
            it_.flushOlderThan(cutoff, out);
        if (ifEnabled_ && policy_.ifDelayedAdvertising)
            if_.invalidateAll();
    }
}

} // namespace paralog

namespace paralog {

const char *
toString(LgEventType t)
{
    switch (t) {
      case LgEventType::kNone: return "none";
      case LgEventType::kLoad: return "load";
      case LgEventType::kStore: return "store";
      case LgEventType::kMovRR: return "mov_rr";
      case LgEventType::kMovImm: return "mov_imm";
      case LgEventType::kAlu: return "alu";
      case LgEventType::kJumpReg: return "jump_reg";
      case LgEventType::kMemToMem: return "mem_to_mem";
      case LgEventType::kMemSetConst: return "mem_set_const";
      case LgEventType::kRegInheritMem: return "reg_inherit_mem";
      case LgEventType::kRegInheritConst: return "reg_inherit_const";
      case LgEventType::kJumpMem: return "jump_mem";
      case LgEventType::kMalloc: return "malloc";
      case LgEventType::kFree: return "free";
      case LgEventType::kSyscallBegin: return "syscall_begin";
      case LgEventType::kSyscallEnd: return "syscall_end";
      case LgEventType::kLockAcquire: return "lock_acquire";
      case LgEventType::kLockRelease: return "lock_release";
      case LgEventType::kBarrierPass: return "barrier_pass";
      case LgEventType::kThreadDone: return "thread_done";
      case LgEventType::kThreadSwitch: return "thread_switch";
      case LgEventType::kCaFlush: return "ca_flush";
      case LgEventType::kProduceVersion: return "produce_version";
    }
    return "?";
}

} // namespace paralog
