#include "accel/mtlb.hpp"

namespace paralog {

std::uint32_t
MetadataTlb::lookupCost(Addr app_addr)
{
    if (!enabled_)
        return kMissCost;
    std::uint64_t page = app_addr >> kPageShift;
    auto it = pages_.find(page);
    if (it != pages_.end()) {
        lru_.erase(it->second.lruIt);
        lru_.push_front(page);
        it->second.lruIt = lru_.begin();
        stats.counter("hits").inc();
        return kHitCost;
    }
    if (pages_.size() >= capacity_) {
        pages_.erase(lru_.back());
        lru_.pop_back();
    }
    lru_.push_front(page);
    pages_.emplace(page, Entry{lru_.begin()});
    stats.counter("misses").inc();
    return kMissCost;
}

void
MetadataTlb::flushAll()
{
    pages_.clear();
    lru_.clear();
    stats.counter("flushes").inc();
}

void
MetadataTlb::flushRange(const AddrRange &range)
{
    if (range.empty())
        return;
    for (std::uint64_t page = range.begin >> kPageShift;
         page <= (range.end - 1) >> kPageShift; ++page) {
        auto it = pages_.find(page);
        if (it != pages_.end()) {
            lru_.erase(it->second.lruIt);
            pages_.erase(it);
        }
    }
}

} // namespace paralog
