#include "accel/mtlb.hpp"

#include "common/logging.hpp"

namespace paralog {

MetadataTlb::MetadataTlb(std::uint32_t entries, bool enabled)
    : capacity_(entries), enabled_(enabled), nodes_(entries)
{
    PARALOG_ASSERT(entries >= 1 && entries < kNil,
                   "bad M-TLB entry count %u", entries);
    for (std::uint16_t i = 0; i + 1u < entries; ++i)
        nodes_[i].next = i + 1;
    free_ = 0;
}

void
MetadataTlb::unlink(std::uint16_t i)
{
    Node &n = nodes_[i];
    if (n.prev != kNil)
        nodes_[n.prev].next = n.next;
    else
        head_ = n.next;
    if (n.next != kNil)
        nodes_[n.next].prev = n.prev;
    else
        tail_ = n.prev;
}

void
MetadataTlb::linkFront(std::uint16_t i)
{
    Node &n = nodes_[i];
    n.prev = kNil;
    n.next = head_;
    if (head_ != kNil)
        nodes_[head_].prev = i;
    head_ = i;
    if (tail_ == kNil)
        tail_ = i;
}

void
MetadataTlb::release(std::uint16_t i)
{
    nodes_[i].used = false;
    nodes_[i].next = free_;
    free_ = i;
    --used_;
}

std::uint32_t
MetadataTlb::lookupCost(Addr app_addr)
{
    if (!enabled_)
        return kMissCost;
    std::uint64_t page = app_addr >> kPageShift;
    // MRU-first traversal: metadata touches are page-local, so hits
    // exit after a hop or two.
    for (std::uint16_t i = head_; i != kNil; i = nodes_[i].next) {
        if (nodes_[i].page == page) {
            unlink(i);
            linkFront(i);
            stats.counter("hits").inc();
            return kHitCost;
        }
    }
    if (used_ >= capacity_) {
        std::uint16_t victim = tail_;
        unlink(victim);
        release(victim);
    }
    std::uint16_t i = free_;
    free_ = nodes_[i].next;
    nodes_[i].page = page;
    nodes_[i].used = true;
    ++used_;
    linkFront(i);
    stats.counter("misses").inc();
    return kMissCost;
}

void
MetadataTlb::flushAll()
{
    for (std::uint16_t i = 0; i < capacity_; ++i) {
        nodes_[i].used = false;
        nodes_[i].next = (i + 1u < capacity_) ? i + 1 : kNil;
    }
    free_ = 0;
    head_ = tail_ = kNil;
    used_ = 0;
    stats.counter("flushes").inc();
}

void
MetadataTlb::flushRange(const AddrRange &range)
{
    if (range.empty())
        return;
    std::uint64_t first = range.begin >> kPageShift;
    std::uint64_t last = (range.end - 1) >> kPageShift;
    for (std::uint16_t i = head_; i != kNil;) {
        std::uint16_t next = nodes_[i].next;
        if (nodes_[i].page >= first && nodes_[i].page <= last) {
            unlink(i);
            release(i);
        }
        i = next;
    }
}

} // namespace paralog
