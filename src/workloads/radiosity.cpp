/**
 * @file
 * RADIOSITY-like SPLASH-2 kernel ("-room" base problem, scaled down).
 *
 * Task-queue parallelism as SPLASH-2 implements it: *per-processor* task
 * queues with stealing. Threads pop task indices from their own
 * lock-protected counter (thread-local queue locks) and only cross
 * threads when their queue drains and they steal from a neighbour. The
 * patch computation may read patches produced by other threads' tasks,
 * creating irregular migration-style dependences.
 */

#include "workloads/workload.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "workloads/script_program.hpp"

namespace paralog {

namespace {

constexpr std::uint64_t kPatchBytes = 64;

class RadiosityThread : public ScriptProgram
{
  public:
    RadiosityThread(ThreadId tid, const WorkloadEnv &env)
        : tid_(tid), env_(env)
    {
        // ~300 instructions of patch computation per task: radiosity
        // tasks (ray-patch interactions) are coarse, so queue locks are
        // held for a tiny fraction of the time.
        tasks_ = std::max<std::uint64_t>(4, env.scale / 300);
        tasksPerThread_ =
            std::max<std::uint64_t>(1, tasks_ / env.numThreads);
        counterAddr_ = env.globalBase + 64ULL * tid_;
        nbThread_ = (tid_ + 1) % env.numThreads;
        stealCounterAddr_ = env.globalBase + 64ULL * nbThread_;
        patchBase_ = env.globalBase + 64ULL * env.numThreads + 64;
    }

    bool
    refill(ThreadContext &tc) override
    {
        if (!started_) {
            // Seed this thread's own task queue.
            emit(Inst::movImm(1, tid_ * tasksPerThread_));
            emit(Inst::store(counterAddr_, 1, 8));
            emit(Inst::barrier(env_.barrierAddr(0), env_.numThreads));
            started_ = true;
            havePendingTask_ = false;
            return true;
        }

        if (havePendingTask_) {
            // r2 holds the task index we popped last refill.
            std::uint64_t task = tc.regs[2];
            havePendingTask_ = false;
            std::uint64_t queue_end =
                (stealing_ ? nbThread_ + 1 : tid_ + 1) * tasksPerThread_;
            if (task >= queue_end) {
                if (!stealing_ && env_.numThreads > 1) {
                    // Own queue drained: try stealing from the
                    // neighbour's queue (usually near-empty too).
                    stealing_ = true;
                } else {
                    return false;
                }
            } else {
                emitTask(task);
            }
        }

        // Pop the next task index under the owning queue's lock.
        Addr ctr = stealing_ ? stealCounterAddr_ : counterAddr_;
        unsigned lock_idx = 1 + (stealing_ ? nbThread_ : tid_);
        emit(Inst::lock(env_.lockAddr(lock_idx)));
        emit(Inst::load(2, ctr, 8));
        emit(Inst::movRR(6, 2));
        emit(Inst::aluImm(6, 1));
        emit(Inst::store(ctr, 6, 8));
        emit(Inst::unlock(env_.lockAddr(lock_idx)));
        havePendingTask_ = true;
        return true;
    }

  private:
    void
    emitTask(std::uint64_t task)
    {
        // Each task owns a distinct patch; a couple of reads gather
        // radiosity from patches other tasks may have produced.
        Addr patch = patchBase_ + (task % 1024) * kPatchBytes;
        Addr src1 = patchBase_ + ((task * 7 + 3) % 1024) * kPatchBytes;
        for (unsigned e = 0; e < 24; ++e) {
            // Operands are reloaded per element, as register pressure
            // forces in real compiled kernels.
            emit(Inst::load(3, src1, 8));
            emit(Inst::load(4, src1 + 8, 8));
            emit(Inst::alu(3, 4));
            emit(Inst::load(5, patch + 8 * (e % 8), 8));
            emit(Inst::alu(5, 3));
            emit(Inst::aluImm(5, 9));
            emit(Inst::alu(5, 3));
            emit(Inst::aluImm(5, 3));
            emit(Inst::store(patch + 8 * (e % 8), 5, 8));
        }
    }

    ThreadId tid_;
    WorkloadEnv env_;
    std::uint64_t tasks_;
    std::uint64_t tasksPerThread_;
    ThreadId nbThread_;
    Addr counterAddr_;
    Addr stealCounterAddr_;
    Addr patchBase_;
    bool started_ = false;
    bool havePendingTask_ = false;
    bool stealing_ = false;
};

class Radiosity : public Workload
{
  public:
    const char *name() const override { return "RADIOSITY"; }

    ThreadProgramPtr
    makeThread(ThreadId tid, const WorkloadEnv &env) const override
    {
        return std::make_unique<RadiosityThread>(tid, env);
    }
};

} // namespace

std::unique_ptr<Workload>
makeRadiosity()
{
    return std::make_unique<Radiosity>();
}

} // namespace paralog
