/**
 * @file
 * Convenience base for workload thread programs: a refillable
 * instruction queue. refill() is called only when every previously
 * emitted instruction has executed, so it may read register values
 * produced by them (pointer chasing).
 */

#ifndef PARALOG_WORKLOADS_SCRIPT_PROGRAM_HPP
#define PARALOG_WORKLOADS_SCRIPT_PROGRAM_HPP

#include <vector>

#include "app/program.hpp"
#include "app/thread_context.hpp"

namespace paralog {

class ScriptProgram : public ThreadProgram
{
  public:
    /** Fetch fast path: hand a whole refill() batch to the caller's
     *  buffer in one virtual call. Mirrors next() exactly: one refill
     *  attempt, and an empty result terminates the thread. */
    std::size_t
    take(std::vector<Inst> &out, ThreadContext &tc) override
    {
        std::size_t before = out.size();
        if (head_ < queue_.size()) {
            // Drain instructions buffered by an earlier next() call.
            out.insert(out.end(), queue_.begin() + head_, queue_.end());
            queue_.clear();
            head_ = 0;
            return out.size() - before;
        }
        if (done_)
            return 0;
        sink_ = &out;
        if (!refill(tc))
            done_ = true;
        sink_ = nullptr;
        return out.size() - before;
    }

    std::optional<Inst>
    next(ThreadContext &tc) override
    {
        if (head_ >= queue_.size() && !done_) {
            queue_.clear();
            head_ = 0;
            if (!refill(tc))
                done_ = true;
        }
        if (head_ >= queue_.size())
            return std::nullopt;
        return queue_[head_++];
    }

  protected:
    /** Emit more instructions; return false when the program is over. */
    virtual bool refill(ThreadContext &tc) = 0;

    void
    emit(const Inst &i)
    {
        if (sink_)
            sink_->push_back(i);
        else
            queue_.push_back(i);
    }

  private:
    std::vector<Inst> queue_; ///< only used via the legacy next() path
    std::size_t head_ = 0;
    std::vector<Inst> *sink_ = nullptr; ///< refill target during take()
    bool done_ = false;
};

} // namespace paralog

#endif // PARALOG_WORKLOADS_SCRIPT_PROGRAM_HPP
