/**
 * @file
 * Convenience base for workload thread programs: a refillable
 * instruction queue. refill() is called only when every previously
 * emitted instruction has executed, so it may read register values
 * produced by them (pointer chasing).
 */

#ifndef PARALOG_WORKLOADS_SCRIPT_PROGRAM_HPP
#define PARALOG_WORKLOADS_SCRIPT_PROGRAM_HPP

#include <deque>

#include "app/program.hpp"
#include "app/thread_context.hpp"

namespace paralog {

class ScriptProgram : public ThreadProgram
{
  public:
    std::optional<Inst>
    next(ThreadContext &tc) override
    {
        if (queue_.empty() && !done_) {
            if (!refill(tc))
                done_ = true;
        }
        if (queue_.empty())
            return std::nullopt;
        Inst i = queue_.front();
        queue_.pop_front();
        return i;
    }

  protected:
    /** Emit more instructions; return false when the program is over. */
    virtual bool refill(ThreadContext &tc) = 0;

    void emit(const Inst &i) { queue_.push_back(i); }

  private:
    std::deque<Inst> queue_;
    bool done_ = false;
};

} // namespace paralog

#endif // PARALOG_WORKLOADS_SCRIPT_PROGRAM_HPP
