/**
 * @file
 * FMM-like SPLASH-2 kernel (paper input: 32768 particles, scaled down).
 *
 * Fast-multipole style: overwhelmingly local particle updates on
 * per-thread arrays with periodic reads of neighbouring threads' cells.
 * Lifeguard overhead is minimal (< 1% AddrCheck overhead in the paper),
 * so this is the "nothing to accelerate" control benchmark in Figure 8.
 */

#include "workloads/workload.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "workloads/script_program.hpp"

namespace paralog {

namespace {

constexpr std::uint64_t kParticleBytes = 16;

class FmmThread : public ScriptProgram
{
  public:
    FmmThread(ThreadId tid, const WorkloadEnv &env)
        : tid_(tid), env_(env), rng_(env.seed * 2862933555777941757ULL + tid)
    {
        particles_ = 64;
        iterations_ = std::max<std::uint64_t>(
            2, env.scale / (particles_ * 7) / env.numThreads);
        ptrSlot_ = env.globalBase + tid_ * 8; // published array pointer
    }

    bool
    refill(ThreadContext &tc) override
    {
        (void)tc;
        if (!initialized_) {
            // Allocate this thread's particle array and publish it.
            emit(Inst::malloc(1, particles_ * kParticleBytes));
            emit(Inst::store(ptrSlot_, 1, 8));
            emit(Inst::movImm(2, tid_ + 1));
            for (std::uint64_t p = 0; p < particles_; ++p) {
                emit(Inst::aluImm(2, 13));
                emit(Inst::storeInd(1, p * kParticleBytes, 2, 8));
                emit(Inst::storeInd(1, p * kParticleBytes + 8, 2, 8));
            }
            emit(Inst::barrier(env_.barrierAddr(0), env_.numThreads));
            // Reload our own array pointer after the barrier.
            emit(Inst::load(1, ptrSlot_, 8));
            initialized_ = true;
            return true;
        }
        if (iter_ >= iterations_)
            return false;

        // Local force pass over our particles (r1 = own array): the
        // force accumulates into r4 and is stored back (classic RMW).
        for (std::uint64_t p = 0; p < particles_; ++p) {
            emit(Inst::loadInd(3, 1, p * kParticleBytes, 8));     // pos
            emit(Inst::loadInd(4, 1, p * kParticleBytes + 8, 8)); // force
            emit(Inst::alu(4, 3));
            emit(Inst::aluImm(4, 11));
            emit(Inst::alu(4, 3));
            emit(Inst::storeInd(1, p * kParticleBytes + 8, 4, 8));
        }
        // Periodic neighbour-cell interaction (coherence arcs).
        if (env_.numThreads > 1 && (iter_ & 0x7) == 0) {
            ThreadId nb = (tid_ + 1) % env_.numThreads;
            emit(Inst::load(5, env_.globalBase + nb * 8, 8)); // nb array
            for (unsigned p = 0; p < 4; ++p) {
                std::uint64_t idx = rng_.below(particles_);
                emit(Inst::loadInd(6, 5, idx * kParticleBytes, 8));
                emit(Inst::alu(7, 6));
            }
        }
        ++iter_;
        return true;
    }

  private:
    ThreadId tid_;
    WorkloadEnv env_;
    Rng rng_;
    std::uint64_t particles_;
    std::uint64_t iterations_;
    std::uint64_t iter_ = 0;
    Addr ptrSlot_;
    bool initialized_ = false;
};

class Fmm : public Workload
{
  public:
    const char *name() const override { return "FMM"; }

    ThreadProgramPtr
    makeThread(ThreadId tid, const WorkloadEnv &env) const override
    {
        return std::make_unique<FmmThread>(tid, env);
    }
};

} // namespace

std::unique_ptr<Workload>
makeFmm()
{
    return std::make_unique<Fmm>();
}

} // namespace paralog
