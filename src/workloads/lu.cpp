/**
 * @file
 * LU-like SPLASH-2 kernel (paper input: 1024x1024 matrix, scaled down).
 *
 * Matrix-oriented: long runs of load/alu/store over rows, with the pivot
 * row read-shared by every thread and phase barriers between pivot
 * steps. The regular load->alu->store pattern is exactly what
 * Inheritance Tracking absorbs best, which is why the paper sees its
 * largest accelerator speedups (~10X TaintCheck) here.
 */

#include "workloads/workload.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "workloads/script_program.hpp"

namespace paralog {

namespace {

class LuThread : public ScriptProgram
{
  public:
    LuThread(ThreadId tid, const WorkloadEnv &env) : tid_(tid), env_(env)
    {
        n_ = 96; // matrix dimension (paper: 1024, scaled)
        blockCols_ = 16;
        // env.scale is the *total* application work (strong scaling,
        // as in Figure 6): the pass count is thread-count independent.
        std::uint64_t insts_per_pass = n_ * blockCols_ * 4;
        passes_ = std::max<std::uint64_t>(
            2, env.scale / std::max<std::uint64_t>(1, insts_per_pass));
        passes_ = std::min<std::uint64_t>(passes_, n_ - 1);
    }

    bool
    refill(ThreadContext &tc) override
    {
        (void)tc;
        switch (phase_) {
          case Phase::kInit: {
            // Each thread initializes its own rows (exclusive stores).
            for (std::uint64_t i = tid_; i < n_; i += env_.numThreads) {
                for (std::uint64_t j = 0; j < n_; j += 4) {
                    emit(Inst::movImm(1, (i << 16) | j));
                    emit(Inst::store(cell(i, j), 1, 8));
                }
            }
            // Thread 0 reads untrusted input into the first row: an
            // unmonitored-kernel write that TaintCheck must taint.
            if (tid_ == 0)
                emit(Inst::syscallRead(cell(0, 0), 256));
            emit(Inst::barrier(env_.barrierAddr(0), env_.numThreads));
            phase_ = Phase::kEliminate;
            return true;
          }

          case Phase::kEliminate: {
            if (pass_ >= passes_) {
                phase_ = Phase::kDone;
                return false;
            }
            std::uint64_t k = pass_;
            // Update the block of columns right of the pivot in every
            // row this thread owns below the pivot row.
            for (std::uint64_t i = k + 1 + tid_; i < n_;
                 i += env_.numThreads) {
                std::uint64_t jend = std::min(n_, k + 1 + blockCols_);
                for (std::uint64_t j = k + 1; j < jend; ++j) {
                    emit(Inst::load(2, cell(k, j), 8)); // pivot row: shared
                    emit(Inst::load(3, cell(i, j), 8)); // own row
                    emit(Inst::alu(3, 2));              // row update
                    emit(Inst::store(cell(i, j), 3, 8));
                }
            }
            emit(Inst::barrier(env_.barrierAddr(0), env_.numThreads));
            ++pass_;
            return true;
          }

          case Phase::kDone:
            return false;
        }
        return false;
    }

  private:
    enum class Phase { kInit, kEliminate, kDone };

    Addr
    cell(std::uint64_t i, std::uint64_t j) const
    {
        return env_.globalBase + (i * n_ + j) * 8;
    }

    ThreadId tid_;
    WorkloadEnv env_;
    std::uint64_t n_;
    std::uint64_t blockCols_;
    std::uint64_t passes_;
    std::uint64_t pass_ = 0;
    Phase phase_ = Phase::kInit;
};

class Lu : public Workload
{
  public:
    const char *name() const override { return "LU"; }

    ThreadProgramPtr
    makeThread(ThreadId tid, const WorkloadEnv &env) const override
    {
        return std::make_unique<LuThread>(tid, env);
    }
};

} // namespace

std::unique_ptr<Workload>
makeLu()
{
    return std::make_unique<Lu>();
}

} // namespace paralog
