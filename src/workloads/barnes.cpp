/**
 * @file
 * BARNES-like SPLASH-2 kernel (paper input: 16K bodies, scaled down).
 *
 * The monitoring-relevant trait is heavy *pointer chasing* over a shared
 * octree plus racy force updates on node values: dependent loads feed
 * two-source ALU operations, which IT cannot absorb, so the lifeguard
 * does real work for a large fraction of events — BARNES is the
 * "lifeguard busy" benchmark in Figure 7.
 */

#include "workloads/workload.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "workloads/script_program.hpp"

namespace paralog {

namespace {

constexpr unsigned kFanout = 4;
constexpr unsigned kDepth = 4;
// 1 + 4 + 16 + 64 + 256 nodes; children of node i are 4i+1 .. 4i+4.
constexpr std::uint64_t kNodes = 341;
constexpr std::uint64_t kLeafFirst = 85; // nodes >= this have no children
constexpr std::uint64_t kNodeBytes = 48; // value + 4 child ptrs + pad

class BarnesThread : public ScriptProgram
{
  public:
    BarnesThread(ThreadId tid, const WorkloadEnv &env)
        : tid_(tid), env_(env), rng_(env.seed * 1299721 + tid)
    {
        // env.scale is total work, divided among threads.
        walks_ = std::max<std::uint64_t>(
            4, env.scale / 26 / env.numThreads);
        slotBase_ = env.globalBase; // slot table used only during build
    }

    bool
    refill(ThreadContext &tc) override
    {
        (void)tc;
        if (phase_ == Phase::kBuild) {
            if (tid_ == 0) {
                // Allocate all nodes and record their addresses in the
                // slot table (r2 holds each fresh pointer).
                for (std::uint64_t i = 0; i < kNodes; ++i) {
                    emit(Inst::malloc(2, kNodeBytes));
                    emit(Inst::store(slot(i), 2, 8));
                    emit(Inst::movImm(3, i + 1));
                    emit(Inst::storeInd(2, 0, 3, 8)); // node.value
                }
                // Link children into parents through loaded pointers.
                for (std::uint64_t i = 0; i < kLeafFirst; ++i) {
                    emit(Inst::load(2, slot(i), 8)); // parent ptr
                    for (unsigned c = 0; c < kFanout; ++c) {
                        emit(Inst::load(3, slot(kFanout * i + 1 + c), 8));
                        emit(Inst::storeInd(2, 8 + 8 * c, 3, 8));
                    }
                }
            }
            emit(Inst::barrier(env_.barrierAddr(0), env_.numThreads));
            phase_ = Phase::kWalk;
            return true;
        }

        if (walk_ >= walks_)
            return false;

        // One complete root-to-leaf walk per refill: every step loads a
        // child pointer from the *current node* (register-indirect), so
        // each address depends on the previous load — genuine pointer
        // chasing through shared heap memory.
        std::uint64_t burst =
            std::min<std::uint64_t>(16, walks_ - walk_);
        for (std::uint64_t w = 0; w < burst; ++w, ++walk_) {
            emit(Inst::load(1, slot(0), 8)); // r1 = root
            for (unsigned d = 0; d < kDepth; ++d) {
                emit(Inst::loadInd(3, 1, 0, 8)); // node value
                emit(Inst::alu(6, 3));           // two-source ALU: IT
                emit(Inst::alu(6, 1));           // cannot absorb these
                if (rng_.chance(0.2))
                    emit(Inst::storeInd(1, 0, 6, 8)); // racy update
                unsigned c = static_cast<unsigned>(rng_.below(kFanout));
                emit(Inst::loadInd(1, 1, 8 + 8 * c, 8)); // descend
            }
            emit(Inst::loadInd(3, 1, 0, 8)); // leaf value
            emit(Inst::alu(6, 3));
        }
        return true;
    }

  private:
    enum class Phase { kBuild, kWalk };

    Addr slot(std::uint64_t i) const { return slotBase_ + i * 8; }

    ThreadId tid_;
    WorkloadEnv env_;
    Rng rng_;
    std::uint64_t walks_;
    std::uint64_t walk_ = 0;
    Addr slotBase_;
    Phase phase_ = Phase::kBuild;
};

class Barnes : public Workload
{
  public:
    const char *name() const override { return "BARNES"; }

    ThreadProgramPtr
    makeThread(ThreadId tid, const WorkloadEnv &env) const override
    {
        return std::make_unique<BarnesThread>(tid, env);
    }
};

} // namespace

std::unique_ptr<Workload>
makeBarnes()
{
    return std::make_unique<Barnes>();
}

} // namespace paralog
