#include "workloads/workload.hpp"

#include "common/logging.hpp"

namespace paralog {

// Factories implemented in the per-benchmark translation units.
std::unique_ptr<Workload> makeBarnes();
std::unique_ptr<Workload> makeLu();
std::unique_ptr<Workload> makeOcean();
std::unique_ptr<Workload> makeFmm();
std::unique_ptr<Workload> makeRadiosity();
std::unique_ptr<Workload> makeBlackscholes();
std::unique_ptr<Workload> makeFluidanimate();
std::unique_ptr<Workload> makeSwaptions();

std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::kBarnes: return makeBarnes();
      case WorkloadKind::kLu: return makeLu();
      case WorkloadKind::kOcean: return makeOcean();
      case WorkloadKind::kFmm: return makeFmm();
      case WorkloadKind::kRadiosity: return makeRadiosity();
      case WorkloadKind::kBlackscholes: return makeBlackscholes();
      case WorkloadKind::kFluidanimate: return makeFluidanimate();
      case WorkloadKind::kSwaptions: return makeSwaptions();
    }
    panic("unknown workload kind");
}

const char *
toString(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::kBarnes: return "BARNES";
      case WorkloadKind::kLu: return "LU";
      case WorkloadKind::kOcean: return "OCEAN";
      case WorkloadKind::kFmm: return "FMM";
      case WorkloadKind::kRadiosity: return "RADIOSITY";
      case WorkloadKind::kBlackscholes: return "BLACKSCH.";
      case WorkloadKind::kFluidanimate: return "FLUIDANIM.";
      case WorkloadKind::kSwaptions: return "SWAPTIONS";
    }
    return "?";
}

const std::vector<WorkloadKind> &
allWorkloads()
{
    static const std::vector<WorkloadKind> kAll = {
        WorkloadKind::kBarnes,       WorkloadKind::kLu,
        WorkloadKind::kOcean,        WorkloadKind::kBlackscholes,
        WorkloadKind::kFluidanimate, WorkloadKind::kSwaptions,
        WorkloadKind::kFmm,          WorkloadKind::kRadiosity,
    };
    return kAll;
}

} // namespace paralog
