/**
 * @file
 * OCEAN-like SPLASH-2 kernel (paper input: 258x258 grid, scaled down).
 *
 * Red-black-style stencil sweeps over a shared grid: each thread owns a
 * band of rows and reads its neighbours' boundary rows, producing a
 * regular, low-frequency dependence pattern at band edges with barriers
 * between sweeps.
 */

#include "workloads/workload.hpp"

#include <algorithm>

#include "workloads/script_program.hpp"

namespace paralog {

namespace {

class OceanThread : public ScriptProgram
{
  public:
    OceanThread(ThreadId tid, const WorkloadEnv &env) : tid_(tid), env_(env)
    {
        g_ = 64; // grid dimension (paper: 258, scaled)
        rows_ = g_ / env.numThreads;
        if (rows_ == 0)
            rows_ = 1;
        row0_ = 1 + tid_ * rows_;
        // env.scale is total work: sweep count is thread independent.
        std::uint64_t insts_per_sweep = (g_ - 2) * (g_ - 2) * 8;
        sweeps_ = std::max<std::uint64_t>(
            2, env.scale / std::max<std::uint64_t>(1, insts_per_sweep));
    }

    bool
    refill(ThreadContext &tc) override
    {
        (void)tc;
        if (!initialized_) {
            for (std::uint64_t i = row0_; i < row0_ + rows_ && i < g_ - 1;
                 ++i) {
                for (std::uint64_t j = 0; j < g_; j += 2) {
                    emit(Inst::movImm(1, i * 1000 + j));
                    emit(Inst::store(cell(i, j), 1, 8));
                }
            }
            emit(Inst::barrier(env_.barrierAddr(0), env_.numThreads));
            initialized_ = true;
            return true;
        }
        if (sweep_ >= sweeps_)
            return false;

        for (std::uint64_t i = row0_; i < row0_ + rows_ && i < g_ - 1;
             ++i) {
            for (std::uint64_t j = 1; j < g_ - 1; ++j) {
                // Five-point stencil: the rows above/below the band edge
                // belong to neighbouring threads (coherence arcs).
                emit(Inst::load(1, cell(i - 1, j), 8));
                emit(Inst::load(2, cell(i + 1, j), 8));
                emit(Inst::alu(1, 2));
                emit(Inst::load(2, cell(i, j - 1), 8));
                emit(Inst::alu(1, 2));
                emit(Inst::load(2, cell(i, j + 1), 8));
                emit(Inst::alu(1, 2));
                emit(Inst::store(cell(i, j), 1, 8));
            }
        }
        emit(Inst::barrier(env_.barrierAddr(0), env_.numThreads));
        ++sweep_;
        return true;
    }

  private:
    Addr
    cell(std::uint64_t i, std::uint64_t j) const
    {
        return env_.globalBase + (i * g_ + j) * 8;
    }

    ThreadId tid_;
    WorkloadEnv env_;
    std::uint64_t g_;
    std::uint64_t rows_;
    std::uint64_t row0_;
    std::uint64_t sweeps_;
    std::uint64_t sweep_ = 0;
    bool initialized_ = false;
};

class Ocean : public Workload
{
  public:
    const char *name() const override { return "OCEAN"; }

    ThreadProgramPtr
    makeThread(ThreadId tid, const WorkloadEnv &env) const override
    {
        return std::make_unique<OceanThread>(tid, env);
    }
};

} // namespace

std::unique_ptr<Workload>
makeOcean()
{
    return std::make_unique<Ocean>();
}

} // namespace paralog
