/**
 * @file
 * BLACKSCHOLES-like PARSEC kernel (simlarge input, scaled down).
 *
 * Embarrassingly parallel option pricing: each thread prices its own
 * slice of the option array with long ALU chains and no inter-thread
 * communication after an initial barrier — the best case for parallel
 * monitoring (near-zero dependence stalls).
 */

#include "workloads/workload.hpp"

#include <algorithm>

#include "workloads/script_program.hpp"

namespace paralog {

namespace {

class BlackscholesThread : public ScriptProgram
{
  public:
    BlackscholesThread(ThreadId tid, const WorkloadEnv &env)
        : tid_(tid), env_(env)
    {
        // ~18 instructions per option; env.scale is total work.
        options_ = std::max<std::uint64_t>(
            8, env.scale / 18 / env.numThreads);
        base_ = env.globalBase + tid_ * options_ * 24;
    }

    bool
    refill(ThreadContext &tc) override
    {
        (void)tc;
        if (!initialized_) {
            // Write this thread's private option parameters.
            for (std::uint64_t i = 0; i < options_; ++i) {
                emit(Inst::movImm(1, 100 + i));
                emit(Inst::store(opt(i, 0), 1, 8));
                emit(Inst::movImm(1, 42 + i));
                emit(Inst::store(opt(i, 1), 1, 8));
            }
            if (tid_ == 0) {
                // Market data arrives from an untrusted source, into a
                // cache-line-aligned buffer clear of the option arrays.
                Addr buf = (env_.globalBase +
                            env_.numThreads * options_ * 24 + 63) &
                           ~63ULL;
                emit(Inst::syscallRead(buf + 64, 128));
            }
            emit(Inst::barrier(env_.barrierAddr(0), env_.numThreads));
            initialized_ = true;
            return true;
        }
        if (next_ >= options_)
            return false;

        std::uint64_t burst = std::min<std::uint64_t>(64, options_ - next_);
        for (std::uint64_t n = 0; n < burst; ++n, ++next_) {
            emit(Inst::load(1, opt(next_, 0), 8)); // spot
            emit(Inst::load(2, opt(next_, 1), 8)); // strike
            // CNDF-like ALU chain.
            emit(Inst::movRR(3, 1));
            emit(Inst::alu(3, 2));
            emit(Inst::aluImm(3, 17));
            emit(Inst::alu(3, 1));
            emit(Inst::movRR(4, 3));
            emit(Inst::alu(4, 2));
            emit(Inst::aluImm(4, 5));
            emit(Inst::alu(3, 4));
            emit(Inst::aluImm(3, 3));
            emit(Inst::alu(3, 1));
            emit(Inst::store(opt(next_, 2), 3, 8)); // price
        }
        return true;
    }

  private:
    Addr
    opt(std::uint64_t i, unsigned field) const
    {
        return base_ + i * 24 + field * 8;
    }

    ThreadId tid_;
    WorkloadEnv env_;
    std::uint64_t options_;
    Addr base_;
    std::uint64_t next_ = 0;
    bool initialized_ = false;
};

class Blackscholes : public Workload
{
  public:
    const char *name() const override { return "BLACKSCH."; }

    ThreadProgramPtr
    makeThread(ThreadId tid, const WorkloadEnv &env) const override
    {
        return std::make_unique<BlackscholesThread>(tid, env);
    }
};

} // namespace

std::unique_ptr<Workload>
makeBlackscholes()
{
    return std::make_unique<Blackscholes>();
}

} // namespace paralog
