/**
 * @file
 * SWAPTIONS-like PARSEC kernel (simlarge input, scaled down).
 *
 * The paper singles SWAPTIONS out for its allocation behaviour: ~450K
 * malloc/free pairs in the parallel phase, each generating a pair of
 * ConflictAlert messages that act as lifeguard-side barriers — making
 * it the worst case for both lifeguards (Figures 6 and 7). Allocation
 * sizes follow the paper's measured distribution: 1/3 of allocations
 * request at most 64 bytes (one cache block), 2/3 at most 32 blocks,
 * and none more than 128 blocks.
 */

#include "workloads/workload.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "workloads/script_program.hpp"

namespace paralog {

namespace {

class SwaptionsThread : public ScriptProgram
{
  public:
    SwaptionsThread(ThreadId tid, const WorkloadEnv &env)
        : tid_(tid), env_(env), rng_(env.seed * 6364136223846793005ULL + tid)
    {
        // Roughly 60 micro-ops per simulation iteration (including the
        // wrapper-library expansion of malloc/free).
        iterations_ = std::max<std::uint64_t>(
            4, env.scale / 60 / env.numThreads);
        accumAddr_ = env.globalBase + tid_ * 0; // shared accumulator
    }

    bool
    refill(ThreadContext &tc) override
    {
        (void)tc;
        if (!started_) {
            emit(Inst::barrier(env_.barrierAddr(0), env_.numThreads));
            started_ = true;
            return true;
        }
        if (iter_ >= iterations_)
            return false;

        // Allocate a fresh HJM path buffer every fourth trial (the
        // paper's distribution: 1/3 <= 1 block, 2/3 <= 32 blocks,
        // none above 128 blocks).
        if ((iter_ & 3) == 0) {
            // Cumulative: 1/3 <= 1 block, 2/3 <= 32 blocks, all
            // <= 128 blocks (the remaining third is 32-128 blocks).
            std::uint64_t bytes;
            double p = rng_.uniform();
            if (p < 1.0 / 3.0)
                bytes = rng_.range(16, 64);
            else if (p < 2.0 / 3.0)
                bytes = rng_.range(65, 32 * 64);
            else
                bytes = rng_.range(32 * 64 + 1, 128 * 64);
            emit(Inst::malloc(1, bytes));
            bufWords_ = std::min<std::uint64_t>(6, bytes / 8);
        }

        // Fill the head of the buffer (simulated rate path).
        emit(Inst::movImm(2, iter_ + 1));
        emit(Inst::movImm(4, 0)); // fresh Monte-Carlo accumulator
        for (std::uint64_t w = 0; w < bufWords_; ++w) {
            emit(Inst::aluImm(2, 3));
            emit(Inst::storeInd(1, w * 8, 2, 8));
        }
        // Monte-Carlo style reduce over the buffer.
        for (std::uint64_t w = 0; w < bufWords_; ++w) {
            emit(Inst::loadInd(3, 1, w * 8, 8));
            emit(Inst::alu(4, 3));
            emit(Inst::aluImm(4, 7));
        }
        // Occasionally publish into the shared accumulator under lock.
        if ((iter_ & 0xF) == 0) {
            emit(Inst::lock(env_.lockAddr(0)));
            emit(Inst::load(5, accumAddr_, 8));
            emit(Inst::alu(5, 4));
            emit(Inst::store(accumAddr_, 5, 8));
            emit(Inst::unlock(env_.lockAddr(0)));
        }
        if ((iter_ & 3) == 3)
            emit(Inst::freeReg(1));
        ++iter_;
        return true;
    }

  private:
    ThreadId tid_;
    WorkloadEnv env_;
    Rng rng_;
    std::uint64_t iterations_;
    std::uint64_t iter_ = 0;
    std::uint64_t bufWords_ = 1;
    Addr accumAddr_;
    bool started_ = false;
};

class Swaptions : public Workload
{
  public:
    const char *name() const override { return "SWAPTIONS"; }

    ThreadProgramPtr
    makeThread(ThreadId tid, const WorkloadEnv &env) const override
    {
        return std::make_unique<SwaptionsThread>(tid, env);
    }
};

} // namespace

std::unique_ptr<Workload>
makeSwaptions()
{
    return std::make_unique<Swaptions>();
}

} // namespace paralog
