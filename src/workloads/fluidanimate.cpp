/**
 * @file
 * FLUIDANIMATE-like PARSEC kernel (simlarge input, scaled down).
 *
 * Grid-of-cells particle simulation with *fine-grain per-cell locks*:
 * most updates stay within a thread's own cells, but border cells are
 * shared with neighbouring threads and protected by locks, producing a
 * steady rate of lock-transfer dependence arcs.
 */

#include "workloads/workload.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "workloads/script_program.hpp"

namespace paralog {

namespace {

constexpr std::uint64_t kCells = 64;
constexpr std::uint64_t kCellBytes = 64;

class FluidanimateThread : public ScriptProgram
{
  public:
    FluidanimateThread(ThreadId tid, const WorkloadEnv &env)
        : tid_(tid), env_(env), rng_(env.seed * 0x9e3779b97f4a7c15ULL + tid)
    {
        steps_ = std::max<std::uint64_t>(
            8, env.scale / 12 / env.numThreads);
        cellsPerThread_ = std::max<std::uint64_t>(1, kCells /
                                                         env.numThreads);
        firstCell_ = tid_ * cellsPerThread_;
    }

    bool
    refill(ThreadContext &tc) override
    {
        (void)tc;
        if (!initialized_) {
            for (std::uint64_t c = firstCell_;
                 c < firstCell_ + cellsPerThread_ && c < kCells; ++c) {
                emit(Inst::movImm(1, c * 17 + 1));
                emit(Inst::store(cellAddr(c), 1, 8));
                emit(Inst::store(cellAddr(c) + 8, 1, 8));
            }
            emit(Inst::barrier(env_.barrierAddr(0), env_.numThreads));
            initialized_ = true;
            return true;
        }
        if (step_ >= steps_)
            return false;

        std::uint64_t burst = std::min<std::uint64_t>(32, steps_ - step_);
        for (std::uint64_t s = 0; s < burst; ++s, ++step_) {
            // 80% own cells, 20% a border/neighbour cell.
            std::uint64_t cell;
            if (rng_.chance(0.8) || env_.numThreads == 1) {
                cell = firstCell_ + rng_.below(cellsPerThread_);
            } else {
                // Neighbour's first cell (the shared border).
                ThreadId nb = (tid_ + 1) % env_.numThreads;
                cell = nb * cellsPerThread_;
            }
            cell %= kCells;
            // Update several particles' density/force fields while
            // holding the cell lock (locks are per cell, not per word).
            emit(Inst::lock(env_.lockAddr(2 + cell)));
            for (unsigned f = 0; f < 4; ++f) {
                emit(Inst::load(2, cellAddr(cell) + 16 * f, 8));
                emit(Inst::load(3, cellAddr(cell) + 16 * f + 8, 8));
                emit(Inst::alu(2, 3));
                emit(Inst::aluImm(2, 5));
                emit(Inst::alu(2, 3));
                emit(Inst::store(cellAddr(cell) + 16 * f, 2, 8));
            }
            emit(Inst::unlock(env_.lockAddr(2 + cell)));
        }
        return true;
    }

  private:
    Addr
    cellAddr(std::uint64_t c) const
    {
        return env_.globalBase + c * kCellBytes;
    }

    ThreadId tid_;
    WorkloadEnv env_;
    Rng rng_;
    std::uint64_t steps_;
    std::uint64_t step_ = 0;
    std::uint64_t cellsPerThread_;
    std::uint64_t firstCell_;
    bool initialized_ = false;
};

class Fluidanimate : public Workload
{
  public:
    const char *name() const override { return "FLUIDANIM."; }

    ThreadProgramPtr
    makeThread(ThreadId tid, const WorkloadEnv &env) const override
    {
        return std::make_unique<FluidanimateThread>(tid, env);
    }
};

} // namespace

std::unique_ptr<Workload>
makeFluidanimate()
{
    return std::make_unique<Fluidanimate>();
}

} // namespace paralog
