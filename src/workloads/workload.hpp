/**
 * @file
 * Workload interface and registry: synthetic stand-ins for the SPLASH-2
 * and PARSEC benchmarks of Table 1. Each workload reproduces the
 * *monitoring-relevant* behaviour of its namesake — instruction mix,
 * sharing pattern, allocation rate, synchronization style — at a scale
 * that finishes in seconds of host time (see DESIGN.md section 2).
 */

#ifndef PARALOG_WORKLOADS_WORKLOAD_HPP
#define PARALOG_WORKLOADS_WORKLOAD_HPP

#include <memory>
#include <string>
#include <vector>

#include "app/program.hpp"
#include "common/types.hpp"

namespace paralog {

/** Shared addresses and sizing every thread of a workload agrees on. */
struct WorkloadEnv
{
    Addr heapBase = 0;
    std::uint64_t heapBytes = 0;
    Addr globalBase = 0;   ///< scratch region for matrices/grids
    Addr lockBase = 0;     ///< region for lock words (64 B apart)
    Addr barrierBase = 0;  ///< region for barrier words
    std::uint32_t numThreads = 1;
    std::uint64_t scale = 10000; ///< per-thread work units
    std::uint64_t seed = 1;

    Addr lockAddr(unsigned i) const { return lockBase + 64ULL * i; }
    Addr barrierAddr(unsigned i) const { return barrierBase + 64ULL * i; }
};

class Workload
{
  public:
    virtual ~Workload() = default;
    virtual const char *name() const = 0;
    virtual ThreadProgramPtr makeThread(ThreadId tid,
                                        const WorkloadEnv &env) const = 0;
};

enum class WorkloadKind
{
    // SPLASH-2
    kBarnes,
    kLu,
    kOcean,
    kFmm,
    kRadiosity,
    // PARSEC
    kBlackscholes,
    kFluidanimate,
    kSwaptions,
};

std::unique_ptr<Workload> makeWorkload(WorkloadKind kind);
const char *toString(WorkloadKind kind);

/** All eight benchmarks, in the paper's Figure 6 order. */
const std::vector<WorkloadKind> &allWorkloads();

} // namespace paralog

#endif // PARALOG_WORKLOADS_WORKLOAD_HPP
