/**
 * @file
 * Command-line parsing for the `paralog` scenario-matrix driver. Every
 * axis of the experiment space (workload, lifeguard, monitoring mode,
 * core count, accelerators, dependence tracking, memory model, seed) is
 * a flag; list-valued flags accept comma-separated values (or `all` for
 * the enum axes), and the driver runs the full cross product — on
 * `--jobs=N` host threads, `--repeat=K` times per cell, reporting text,
 * `--csv` or `--json`.
 *
 * Parsing is split from main() so tests can exercise flag handling
 * without spawning processes.
 */

#ifndef PARALOG_CLI_ARGS_HPP
#define PARALOG_CLI_ARGS_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hpp"
#include "lifeguard/lifeguard.hpp"
#include "sim/config.hpp"
#include "workloads/workload.hpp"

namespace paralog::cli {

/** One fully-specified (workload, lifeguard, mode, cores) scenario. */
struct Scenario
{
    WorkloadKind workload;
    LifeguardKind lifeguard;
    MonitorMode mode;
    std::uint32_t cores;
};

/** Bits in CliOptions::setFlags: which scenario-axis flags were given
 *  explicitly (drives --replay conflict detection: replay takes every
 *  axis except the lifeguard from the recording). */
enum SetFlag : std::uint32_t
{
    kSetWorkload = 1u << 0,
    kSetLifeguard = 1u << 1,
    kSetMode = 1u << 2,
    kSetCores = 1u << 3,
    kSetSeed = 1u << 4,
    kSetScale = 1u << 5,
    kSetMemoryModel = 1u << 6,
    kSetAccel = 1u << 7,
    kSetDepTracking = 1u << 8,
    kSetConflictAlerts = 1u << 9,
    kSetLogBuffer = 1u << 10,
};

struct CliOptions
{
    std::vector<WorkloadKind> workloads{WorkloadKind::kLu};
    std::vector<LifeguardKind> lifeguards{LifeguardKind::kTaintCheck};
    std::vector<MonitorMode> modes{MonitorMode::kParallel};
    std::vector<std::uint32_t> cores{4};
    std::vector<std::uint64_t> seeds{1}; ///< --seed=a,b,c sweeps

    bool accelerators = true;
    DepTracking depTracking = DepTracking::kPerBlock;
    MemoryModel memoryModel = MemoryModel::kSC;
    bool conflictAlerts = true;
    std::uint64_t scale = 20000;
    std::uint64_t logBufferBytes = 64 * 1024;
    std::uint32_t shadowShards = 0; ///< 0 = auto (per lifeguard core)
    std::uint64_t maxCycles = 0;    ///< 0 = platform default watchdog

    /// --lg-threads=N: host threads for the lifeguard cores, live or
    /// replay (0/1 = serial engine; >= 2 = concurrent engine). Live
    /// concurrent runs keep analysis fingerprints identical to serial
    /// but relax timing columns; composed with --record, the journal
    /// carries a live-parallel header bit and replays result-exact
    /// through the concurrent replay engine.
    std::uint32_t lgThreads = 0;
    bool lgThreadsSet = false; ///< flag given (drives conflict checks)

    std::uint32_t jobs = 1;   ///< host threads running matrix cells
    std::uint32_t repeat = 1; ///< repeats per cell, aggregated

    /// --record=FILE: persist the (single) run as a trace file.
    std::string recordPath;
    /// --trace-format=v1|v2: container version for --record and the
    /// target version for --migrate (1 = paralog-trace-v1, 2 = v2).
    std::uint32_t traceFormat = 1;
    bool traceFormatSet = false; ///< flag given (drives --migrate default)
    /// --migrate=SRC: rewrite the recording at SRC into --out=DST using
    /// --trace-format (default v2 when unset). Exclusive with every
    /// run mode.
    std::string migratePath;
    /// --out=DST: the migration target path (required with --migrate).
    std::string outPath;
    /// --decode-jobs=N: worker threads that pre-decode v2 ops chunks at
    /// replay open (1 = lazy serial decode). Replay-only; wall-clock
    /// knob, results identical for any value.
    std::uint32_t decodeJobs = 1;
    bool decodeJobsSet = false; ///< flag given (drives conflict checks)
    /// --replay=FILE: re-monitor a recording; scenario axes come from
    /// the file, --lifeguard optionally overrides the monitor.
    std::string replayPath;
    /// --submit=FILE: upload a recording to a running paralogd for
    /// re-monitoring (requires --socket; --lifeguard selects monitors).
    std::string submitPath;
    /// --socket=PATH: the paralogd Unix-domain socket that --submit
    /// and --daemon-stats talk to.
    std::string socketPath;
    /// --daemon-stats: print the paralogd metrics dump from --socket.
    bool daemonStats = false;
    std::uint32_t setFlags = 0; ///< SetFlag bits of explicit axes

    bool csv = false;      ///< machine-readable CSV output
    bool json = false;     ///< machine-readable JSON output
    bool describe = false; ///< print the Table-1 configuration per run
    bool verbose = false;  ///< keep warn()/inform() output

    /**
     * The cross product of the list-valued axes, in flag order —
     * except that no-monitoring scenarios appear once per
     * (workload, cores), not once per lifeguard: the baseline attaches
     * no lifeguard, so those runs would be identical repeats.
     */
    std::vector<Scenario> scenarios() const;

    /** Experiment options shared by every scenario (first seed). */
    ExperimentOptions experimentOptions() const;

    /**
     * The fully-expanded work queue for runMatrix(): scenarios x seeds,
     * each spec repeated `repeat` times consecutively, so the specs of
     * output cell c are indices [c * repeat, (c + 1) * repeat).
     */
    std::vector<RunSpec> runSpecs() const;

    /** True when output rows need seed/repeat columns (seed sweep or
     *  repeated cells). Single-run invocations keep the legacy CSV
     *  schema, so committed bench baselines stay bit-identical. */
    bool
    sweepColumns() const
    {
        return seeds.size() > 1 || repeat > 1;
    }
};

enum class ParseStatus
{
    kOk,       ///< options populated, run the scenarios
    kHelp,     ///< --help: print usage, exit 0
    kError,    ///< bad flag/value/combination: print error + usage, exit 2
};

struct ParseResult
{
    ParseStatus status = ParseStatus::kOk;
    std::string error; ///< set iff status == kError
    CliOptions options;
};

/** Parse argv (excluding argv[0]); never exits or prints. */
ParseResult parseArgs(const std::vector<std::string_view> &args);

/** Convenience overload for main(). */
ParseResult parseArgs(int argc, const char *const *argv);

/** Full usage text, `--help` style. */
std::string usageText();

// Individual value parsers (exposed for unit tests). Each returns true
// and fills @p out on success.
bool parseWorkload(std::string_view name, WorkloadKind &out);
bool parseLifeguard(std::string_view name, LifeguardKind &out);
bool parseMode(std::string_view name, MonitorMode &out);
bool parseBool(std::string_view value, bool &out);

/** Flag-style (short, lowercase) names, distinct from toString(). */
const char *flagName(WorkloadKind w);
const char *flagName(LifeguardKind lg);
const char *flagName(MonitorMode m);
const char *flagName(DepTracking d);
const char *flagName(MemoryModel m);

} // namespace paralog::cli

#endif // PARALOG_CLI_ARGS_HPP
