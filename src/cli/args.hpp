/**
 * @file
 * Command-line parsing for the `paralog` scenario-matrix driver. Every
 * axis of the experiment space (workload, lifeguard, monitoring mode,
 * core count, accelerators, dependence tracking, memory model) is a
 * flag; list-valued flags accept comma-separated values or `all`, and
 * the driver runs the full cross product.
 *
 * Parsing is split from main() so tests can exercise flag handling
 * without spawning processes.
 */

#ifndef PARALOG_CLI_ARGS_HPP
#define PARALOG_CLI_ARGS_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hpp"
#include "lifeguard/lifeguard.hpp"
#include "sim/config.hpp"
#include "workloads/workload.hpp"

namespace paralog::cli {

/** One fully-specified (workload, lifeguard, mode, cores) scenario. */
struct Scenario
{
    WorkloadKind workload;
    LifeguardKind lifeguard;
    MonitorMode mode;
    std::uint32_t cores;
};

struct CliOptions
{
    std::vector<WorkloadKind> workloads{WorkloadKind::kLu};
    std::vector<LifeguardKind> lifeguards{LifeguardKind::kTaintCheck};
    std::vector<MonitorMode> modes{MonitorMode::kParallel};
    std::vector<std::uint32_t> cores{4};

    bool accelerators = true;
    DepTracking depTracking = DepTracking::kPerBlock;
    MemoryModel memoryModel = MemoryModel::kSC;
    bool conflictAlerts = true;
    std::uint64_t scale = 20000;
    std::uint64_t seed = 1;
    std::uint64_t logBufferBytes = 64 * 1024;

    bool csv = false;      ///< machine-readable output
    bool describe = false; ///< print the Table-1 configuration per run
    bool verbose = false;  ///< keep warn()/inform() output

    /**
     * The cross product of the list-valued axes, in flag order —
     * except that no-monitoring scenarios appear once per
     * (workload, cores), not once per lifeguard: the baseline attaches
     * no lifeguard, so those runs would be identical repeats.
     */
    std::vector<Scenario> scenarios() const;

    /** Experiment options shared by every scenario. */
    ExperimentOptions experimentOptions() const;
};

enum class ParseStatus
{
    kOk,       ///< options populated, run the scenarios
    kHelp,     ///< --help: print usage, exit 0
    kError,    ///< bad flag/value/combination: print error + usage, exit 2
};

struct ParseResult
{
    ParseStatus status = ParseStatus::kOk;
    std::string error; ///< set iff status == kError
    CliOptions options;
};

/** Parse argv (excluding argv[0]); never exits or prints. */
ParseResult parseArgs(const std::vector<std::string_view> &args);

/** Convenience overload for main(). */
ParseResult parseArgs(int argc, const char *const *argv);

/** Full usage text, `--help` style. */
std::string usageText();

// Individual value parsers (exposed for unit tests). Each returns true
// and fills @p out on success.
bool parseWorkload(std::string_view name, WorkloadKind &out);
bool parseLifeguard(std::string_view name, LifeguardKind &out);
bool parseMode(std::string_view name, MonitorMode &out);
bool parseBool(std::string_view value, bool &out);

/** Flag-style (short, lowercase) names, distinct from toString(). */
const char *flagName(WorkloadKind w);
const char *flagName(LifeguardKind lg);
const char *flagName(MonitorMode m);
const char *flagName(DepTracking d);
const char *flagName(MemoryModel m);

} // namespace paralog::cli

#endif // PARALOG_CLI_ARGS_HPP
