/**
 * @file
 * The `paralog` scenario-matrix driver: runs the cross product of the
 * requested (workload x lifeguard x mode x cores) scenarios through
 * runExperiment() and reports per-run statistics as human-readable text
 * or CSV. Every flag combination the paper evaluates (Figures 6-8,
 * Table 1) is reachable from here.
 */

#include <cstdio>

#include "cli/args.hpp"
#include "common/logging.hpp"
#include "core/experiment.hpp"

namespace paralog::cli {
namespace {

struct RunRow
{
    Scenario scenario;
    RunResult result;
};

/** Lifeguard column label; baseline runs attach no lifeguard. */
const char *
lifeguardLabel(const Scenario &s)
{
    return s.mode == MonitorMode::kNoMonitoring ? "-"
                                                : flagName(s.lifeguard);
}

void
printCsvHeader()
{
    std::printf("workload,lifeguard,mode,cores,accel,dep_tracking,"
                "memory_model,scale,total_cycles,app_exec_cycles,"
                "retired,records_processed,events_handled,"
                "lg_useful_cycles,lg_dep_stall,lg_app_stall,violations,"
                "versions_produced,versions_consumed,version_stalls\n");
}

void
printCsvRow(const CliOptions &opt, const RunRow &row)
{
    const RunResult &r = row.result;
    std::uint64_t records = 0, useful = 0, dep = 0, app_stall = 0;
    for (const auto &l : r.lifeguard) {
        records += l.recordsProcessed;
        useful += l.usefulCycles;
        dep += l.depStallTotal();
        app_stall += l.appStall;
    }
    std::printf("%s,%s,%s,%u,%s,%s,%s,%llu,%llu,%llu,%llu,%llu,%llu,"
                "%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
                flagName(row.scenario.workload),
                lifeguardLabel(row.scenario),
                flagName(row.scenario.mode), row.scenario.cores,
                opt.accelerators ? "on" : "off",
                flagName(opt.depTracking), flagName(opt.memoryModel),
                static_cast<unsigned long long>(opt.scale),
                static_cast<unsigned long long>(r.totalCycles),
                static_cast<unsigned long long>(r.appExecTotal()),
                static_cast<unsigned long long>(r.retiredTotal()),
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(r.eventsHandledTotal()),
                static_cast<unsigned long long>(useful),
                static_cast<unsigned long long>(dep),
                static_cast<unsigned long long>(app_stall),
                static_cast<unsigned long long>(r.violationCount),
                static_cast<unsigned long long>(r.versionsProduced),
                static_cast<unsigned long long>(r.versionsConsumed),
                static_cast<unsigned long long>(r.versionStallRetries));
}

void
printTextRow(const CliOptions &opt, const RunRow &row)
{
    const RunResult &r = row.result;
    std::printf("=== %s / %s / %s / %u app thread%s ===\n",
                flagName(row.scenario.workload),
                lifeguardLabel(row.scenario),
                flagName(row.scenario.mode), row.scenario.cores,
                row.scenario.cores == 1 ? "" : "s");
    std::printf("  total cycles:      %llu\n",
                static_cast<unsigned long long>(r.totalCycles));
    std::printf("  retired micro-ops: %llu\n",
                static_cast<unsigned long long>(r.retiredTotal()));

    Cycle log_full = 0, lock_stall = 0, barrier_stall = 0;
    for (const auto &a : r.app) {
        log_full += a.logFullStall;
        lock_stall += a.lockStall;
        barrier_stall += a.barrierStall;
    }
    std::printf("  app stalls:        log-full %llu, lock %llu, "
                "barrier %llu\n",
                static_cast<unsigned long long>(log_full),
                static_cast<unsigned long long>(lock_stall),
                static_cast<unsigned long long>(barrier_stall));

    if (!r.lifeguard.empty()) {
        std::uint64_t records = 0;
        Cycle useful = 0, dep = 0, app_stall = 0;
        for (const auto &l : r.lifeguard) {
            records += l.recordsProcessed;
            useful += l.usefulCycles;
            dep += l.depStallTotal();
            app_stall += l.appStall;
        }
        double tot = static_cast<double>(useful + dep + app_stall);
        if (tot == 0)
            tot = 1;
        std::printf("  records processed: %llu (%llu events after "
                    "accelerators)\n",
                    static_cast<unsigned long long>(records),
                    static_cast<unsigned long long>(
                        r.eventsHandledTotal()));
        std::printf("  lifeguard time:    %.1f%% useful, %.1f%% "
                    "dependence stall, %.1f%% waiting for app\n",
                    100.0 * static_cast<double>(useful) / tot,
                    100.0 * static_cast<double>(dep) / tot,
                    100.0 * static_cast<double>(app_stall) / tot);
    }
    if (opt.memoryModel == MemoryModel::kTSO && !r.lifeguard.empty()) {
        std::printf("  versions:          produced %llu, consumed %llu, "
                    "stall retries %llu\n",
                    static_cast<unsigned long long>(r.versionsProduced),
                    static_cast<unsigned long long>(r.versionsConsumed),
                    static_cast<unsigned long long>(
                        r.versionStallRetries));
    }
    std::printf("  violations:        %llu\n",
                static_cast<unsigned long long>(r.violationCount));
    if (opt.describe) {
        ExperimentOptions eopt = opt.experimentOptions();
        PlatformConfig cfg = makeConfig(
            row.scenario.workload, row.scenario.lifeguard,
            row.scenario.mode, row.scenario.cores, eopt);
        std::printf("%s", cfg.sim.describe().c_str());
    }
    std::printf("\n");
}

int
runMatrix(const CliOptions &opt)
{
    setQuiet(!opt.verbose);
    ExperimentOptions eopt = opt.experimentOptions();

    if (opt.csv)
        printCsvHeader();
    for (const Scenario &s : opt.scenarios()) {
        RunRow row{s, runExperiment(s.workload, s.lifeguard, s.mode,
                                    s.cores, eopt)};
        if (opt.csv)
            printCsvRow(opt, row);
        else
            printTextRow(opt, row);
        std::fflush(stdout);
    }
    return 0;
}

} // namespace
} // namespace paralog::cli

int
main(int argc, char **argv)
{
    using namespace paralog::cli;

    ParseResult parsed = parseArgs(argc, argv);
    switch (parsed.status) {
      case ParseStatus::kHelp:
        std::printf("%s", usageText().c_str());
        return 0;
      case ParseStatus::kError:
        std::fprintf(stderr, "paralog: %s\n\n%s", parsed.error.c_str(),
                     usageText().c_str());
        return 2;
      case ParseStatus::kOk:
        break;
    }
    return runMatrix(parsed.options);
}
