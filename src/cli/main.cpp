/**
 * @file
 * The `paralog` scenario-matrix driver: expands the cross product of
 * the requested (workload x lifeguard x mode x cores x seed) scenarios
 * into a work queue, executes it on `--jobs` host threads through
 * runMatrix() (each cell owns its Platform, so results are identical
 * for any job count), aggregates `--repeat` runs per cell, and reports
 * per-cell statistics as human-readable text, CSV or JSON. Every flag
 * combination the paper evaluates (Figures 6-8, Table 1) is reachable
 * from here.
 *
 * A cell whose run panics is marked failed in every output format and
 * the driver exits 1; the rest of the matrix still runs.
 */

#include <csignal>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "daemon/client.hpp"
#include "trace/migrate.hpp"
#include "trace/trace_reader.hpp"

namespace paralog::cli {
namespace {

// ------------------------------------------------- interrupt handling
//
// First Ctrl-C: finish the cells already running, emit the partial
// output with an `interrupted` marker, exit 130. Second Ctrl-C: the
// user means it — hard exit.

std::atomic<bool> g_interrupted{false};
std::atomic<int> g_sigint_count{0};

extern "C" void
onInterrupt(int)
{
    if (g_sigint_count.fetch_add(1, std::memory_order_relaxed) >= 1)
        ::_exit(130);
    g_interrupted.store(true, std::memory_order_relaxed);
}

void
installInterruptHandler()
{
    struct sigaction sa = {};
    sa.sa_handler = onInterrupt;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
}

/** Lifeguard column label; baseline runs attach no lifeguard. */
const char *
lifeguardLabel(const Scenario &s)
{
    return s.mode == MonitorMode::kNoMonitoring ? "-"
                                                : flagName(s.lifeguard);
}

/**
 * --replay: the scenario and platform axes come from the recording's
 * header; only the lifeguard list survives (when given, each listed
 * lifeguard re-monitors the recording as its own cell). The rewritten
 * options drive the normal matrix machinery — and the output rows and
 * `options` blocks describe the recorded configuration.
 */
bool
applyReplayHeader(CliOptions &opt, std::string &err)
{
    paralog::trace::TraceReader reader(opt.replayPath);
    if (!reader.ok()) {
        err = reader.error();
        return false;
    }
    const paralog::trace::TraceConfig &tc = reader.config();
    opt.workloads = {tc.workload};
    if (!(opt.setFlags & kSetLifeguard))
        opt.lifeguards = {tc.lifeguard};
    opt.modes = {MonitorMode::kParallel};
    opt.cores = {tc.appThreads};
    opt.seeds = {tc.seed};
    opt.scale = tc.scale;
    opt.memoryModel = tc.memoryModel;
    opt.depTracking = tc.depTracking;
    opt.conflictAlerts = tc.conflictAlerts;
    opt.accelerators = tc.accelIT && tc.accelIF && tc.accelMTLB;
    opt.logBufferBytes = tc.logBufferBytes;
    if (opt.shadowShards == 0)
        opt.shadowShards = tc.shadowShards;
    return true;
}

// ------------------------------------------------------------- stats

/// The per-cell statistics reported by CSV and JSON, in column order.
/// One table drives both formats, so `--json` values always round-trip
/// against `--csv` columns.
constexpr std::size_t kNumStats = 12;
constexpr const char *kStatNames[kNumStats] = {
    "total_cycles",   "app_exec_cycles",  "retired",
    "records_processed", "events_handled", "lg_useful_cycles",
    "lg_dep_stall",   "lg_app_stall",     "violations",
    "versions_produced", "versions_consumed", "version_stalls",
};

std::array<std::uint64_t, kNumStats>
statVec(const RunResult &r)
{
    std::uint64_t records = 0, useful = 0, dep = 0, app_stall = 0;
    for (const auto &l : r.lifeguard) {
        records += l.recordsProcessed;
        useful += l.usefulCycles;
        dep += l.depStallTotal();
        app_stall += l.appStall;
    }
    return {r.totalCycles,      r.appExecTotal(),    r.retiredTotal(),
            records,            r.eventsHandledTotal(), useful,
            dep,                app_stall,           r.violationCount,
            r.versionsProduced, r.versionsConsumed,  r.versionStallRetries};
}

/**
 * One output cell: a (scenario, seed) pair with its `--repeat` run
 * results. Aggregation is order-invariant (SampleSummary sorts), and a
 * cell counts as failed as soon as any repeat failed.
 */
struct Cell
{
    Scenario scenario;
    std::uint64_t seed = 1;
    std::vector<CellResult> repeats;

    bool
    failed() const
    {
        for (const CellResult &r : repeats) {
            if (r.failed)
                return true;
        }
        return false;
    }

    /** True when any repeat never ran (matrix interrupted). */
    bool
    skipped() const
    {
        for (const CellResult &r : repeats) {
            if (r.skipped)
                return true;
        }
        return false;
    }

    const std::string &
    firstError() const
    {
        static const std::string none;
        for (const CellResult &r : repeats) {
            if (r.failed)
                return r.error;
        }
        return none;
    }

    std::array<SampleSummary, kNumStats>
    aggregate() const
    {
        std::array<SampleSummary, kNumStats> agg;
        for (const CellResult &r : repeats) {
            if (r.failed)
                continue;
            std::array<std::uint64_t, kNumStats> v = statVec(r.result);
            for (std::size_t i = 0; i < kNumStats; ++i)
                agg[i].add(v[i]);
        }
        return agg;
    }

    WallClockSummary
    wall() const
    {
        WallClockSummary w;
        for (const CellResult &r : repeats)
            w.add(r.wallMs);
        return w;
    }
};

// --------------------------------------------------------------- CSV

void
printCsvHeader(const CliOptions &opt)
{
    std::printf("workload,lifeguard,mode,cores,accel,dep_tracking,"
                "memory_model,scale");
    for (const char *name : kStatNames)
        std::printf(",%s", name);
    if (opt.sweepColumns())
        std::printf(",seed,repeats");
    std::printf("\n");
}

/** CSV-quote a failure message (commas/quotes legal, newlines not). */
std::string
csvQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else if (c == '\n' || c == '\r')
            out += ' ';
        else
            out += c;
    }
    out += '"';
    return out;
}

void
printCsvRow(const CliOptions &opt, const Cell &cell)
{
    std::printf("%s,%s,%s,%u,%s,%s,%s,%llu",
                flagName(cell.scenario.workload), lifeguardLabel(cell.scenario),
                flagName(cell.scenario.mode), cell.scenario.cores,
                opt.accelerators ? "on" : "off",
                flagName(opt.depTracking), flagName(opt.memoryModel),
                static_cast<unsigned long long>(opt.scale));
    if (cell.failed()) {
        std::printf(",%s",
                    csvQuote("failed: " + cell.firstError()).c_str());
    } else {
        std::array<SampleSummary, kNumStats> agg = cell.aggregate();
        for (const SampleSummary &s : agg)
            std::printf(",%llu",
                        static_cast<unsigned long long>(s.median()));
    }
    if (opt.sweepColumns())
        std::printf(",%llu,%zu",
                    static_cast<unsigned long long>(cell.seed),
                    cell.repeats.size());
    std::printf("\n");
}

// -------------------------------------------------------------- JSON

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
printJsonHeader(const CliOptions &opt)
{
    std::printf("{\n");
    std::printf("  \"schema\": \"paralog-matrix-v1\",\n");
    if (!opt.replayPath.empty())
        std::printf("  \"replay\": \"%s\",\n",
                    jsonEscape(opt.replayPath).c_str());
    if (!opt.recordPath.empty())
        std::printf("  \"record\": \"%s\",\n",
                    jsonEscape(opt.recordPath).c_str());
    std::printf("  \"jobs\": %u,\n", opt.jobs);
    std::printf("  \"repeat\": %u,\n", opt.repeat);
    std::printf("  \"seeds\": [");
    for (std::size_t i = 0; i < opt.seeds.size(); ++i)
        std::printf("%s%llu", i ? ", " : "",
                    static_cast<unsigned long long>(opt.seeds[i]));
    std::printf("],\n");
    std::printf("  \"options\": {\"scale\": %llu, \"accel\": \"%s\", "
                "\"dep_tracking\": \"%s\", \"memory_model\": \"%s\", "
                "\"conflict_alerts\": \"%s\", \"log_buffer\": %llu, "
                "\"shadow_shards\": %u, \"max_cycles\": %llu},\n",
                static_cast<unsigned long long>(opt.scale),
                opt.accelerators ? "on" : "off", flagName(opt.depTracking),
                flagName(opt.memoryModel),
                opt.conflictAlerts ? "on" : "off",
                static_cast<unsigned long long>(opt.logBufferBytes),
                opt.shadowShards,
                static_cast<unsigned long long>(opt.maxCycles));
    std::printf("  \"cells\": [");
}

void
printJsonCell(const Cell &cell, bool first)
{
    std::printf("%s\n    {\n", first ? "" : ",");
    std::printf("      \"workload\": \"%s\",\n",
                flagName(cell.scenario.workload));
    std::printf("      \"lifeguard\": \"%s\",\n",
                lifeguardLabel(cell.scenario));
    std::printf("      \"mode\": \"%s\",\n", flagName(cell.scenario.mode));
    std::printf("      \"cores\": %u,\n", cell.scenario.cores);
    std::printf("      \"seed\": %llu,\n",
                static_cast<unsigned long long>(cell.seed));
    std::printf("      \"repeats\": %zu,\n", cell.repeats.size());
    if (cell.failed()) {
        std::printf("      \"status\": \"failed\",\n");
        std::printf("      \"error\": \"%s\",\n",
                    jsonEscape(cell.firstError()).c_str());
    } else {
        std::printf("      \"status\": \"ok\",\n");
        std::uint64_t fp = cell.repeats.front().result.shadowFingerprint;
        if (fp != 0)
            std::printf("      \"fingerprint\": \"0x%016llx\",\n",
                        static_cast<unsigned long long>(fp));
        std::printf("      \"stats\": {\n");
        std::array<SampleSummary, kNumStats> agg = cell.aggregate();
        for (std::size_t i = 0; i < kNumStats; ++i) {
            std::printf("        \"%s\": {\"min\": %llu, \"median\": "
                        "%llu, \"max\": %llu}%s\n",
                        kStatNames[i],
                        static_cast<unsigned long long>(agg[i].min()),
                        static_cast<unsigned long long>(agg[i].median()),
                        static_cast<unsigned long long>(agg[i].max()),
                        i + 1 < kNumStats ? "," : "");
        }
        std::printf("      },\n");
    }
    WallClockSummary w = cell.wall();
    std::printf("      \"wall_ms\": {\"min\": %.3f, \"median\": %.3f, "
                "\"max\": %.3f}\n",
                w.min(), w.median(), w.max());
    std::printf("    }");
}

void
printJsonFooter(std::size_t cells, std::size_t failed,
                std::size_t skipped, bool interrupted)
{
    std::printf("\n  ],\n");
    std::printf("  \"cells_total\": %zu,\n", cells);
    std::printf("  \"cells_failed\": %zu,\n", failed);
    std::printf("  \"cells_skipped\": %zu,\n", skipped);
    std::printf("  \"interrupted\": %s\n", interrupted ? "true" : "false");
    std::printf("}\n");
}

// -------------------------------------------------------------- text

void
printTextRow(const CliOptions &opt, const Cell &cell)
{
    std::printf("=== %s / %s / %s / %u app thread%s",
                flagName(cell.scenario.workload), lifeguardLabel(cell.scenario),
                flagName(cell.scenario.mode), cell.scenario.cores,
                cell.scenario.cores == 1 ? "" : "s");
    if (opt.seeds.size() > 1)
        std::printf(" / seed %llu",
                    static_cast<unsigned long long>(cell.seed));
    std::printf(" ===\n");

    if (cell.failed()) {
        std::printf("  FAILED: %s\n\n", cell.firstError().c_str());
        return;
    }

    // Repeats of one cell are deterministic, so the per-thread detail
    // below comes from the first run; the aggregate line reports the
    // (min/median/max) spread as proof.
    const RunResult &r = cell.repeats.front().result;
    std::printf("  total cycles:      %llu\n",
                static_cast<unsigned long long>(r.totalCycles));
    std::printf("  retired micro-ops: %llu\n",
                static_cast<unsigned long long>(r.retiredTotal()));

    Cycle log_full = 0, lock_stall = 0, barrier_stall = 0;
    for (const auto &a : r.app) {
        log_full += a.logFullStall;
        lock_stall += a.lockStall;
        barrier_stall += a.barrierStall;
    }
    std::printf("  app stalls:        log-full %llu, lock %llu, "
                "barrier %llu\n",
                static_cast<unsigned long long>(log_full),
                static_cast<unsigned long long>(lock_stall),
                static_cast<unsigned long long>(barrier_stall));

    if (!r.lifeguard.empty()) {
        std::uint64_t records = 0;
        Cycle useful = 0, dep = 0, app_stall = 0;
        for (const auto &l : r.lifeguard) {
            records += l.recordsProcessed;
            useful += l.usefulCycles;
            dep += l.depStallTotal();
            app_stall += l.appStall;
        }
        double tot = static_cast<double>(useful + dep + app_stall);
        if (tot == 0)
            tot = 1;
        std::printf("  records processed: %llu (%llu events after "
                    "accelerators)\n",
                    static_cast<unsigned long long>(records),
                    static_cast<unsigned long long>(
                        r.eventsHandledTotal()));
        std::printf("  lifeguard time:    %.1f%% useful, %.1f%% "
                    "dependence stall, %.1f%% waiting for app\n",
                    100.0 * static_cast<double>(useful) / tot,
                    100.0 * static_cast<double>(dep) / tot,
                    100.0 * static_cast<double>(app_stall) / tot);
    }
    if (opt.memoryModel == MemoryModel::kTSO && !r.lifeguard.empty()) {
        std::printf("  versions:          produced %llu, consumed %llu, "
                    "stall retries %llu\n",
                    static_cast<unsigned long long>(r.versionsProduced),
                    static_cast<unsigned long long>(r.versionsConsumed),
                    static_cast<unsigned long long>(
                        r.versionStallRetries));
    }
    std::printf("  violations:        %llu\n",
                static_cast<unsigned long long>(r.violationCount));
    if (r.shadowFingerprint != 0)
        std::printf("  shadow fingerprint: 0x%016llx\n",
                    static_cast<unsigned long long>(
                        r.shadowFingerprint));
    if (cell.repeats.size() > 1) {
        std::array<SampleSummary, kNumStats> agg = cell.aggregate();
        std::printf("  repeats:           %zu (total cycles "
                    "min/median/max %llu/%llu/%llu)\n",
                    cell.repeats.size(),
                    static_cast<unsigned long long>(agg[0].min()),
                    static_cast<unsigned long long>(agg[0].median()),
                    static_cast<unsigned long long>(agg[0].max()));
    }
    if (opt.describe) {
        ExperimentOptions eopt = opt.experimentOptions();
        eopt.seed = cell.seed;
        PlatformConfig cfg = makeConfig(
            cell.scenario.workload, cell.scenario.lifeguard,
            cell.scenario.mode, cell.scenario.cores, eopt);
        std::printf("%s", cfg.sim.describe().c_str());
    }
    std::printf("\n");
}

// ------------------------------------------------------------ driver

int
runCliMatrix(const CliOptions &opt)
{
    setQuiet(!opt.verbose);

    const std::vector<Scenario> scenarios = opt.scenarios();
    const std::vector<RunSpec> specs = opt.runSpecs();
    const std::size_t num_cells = scenarios.size() * opt.seeds.size();

    if (opt.csv)
        printCsvHeader(opt);
    else if (opt.json)
        printJsonHeader(opt);

    // runMatrix() delivers results in spec order; consecutive groups of
    // `repeat` specs form one output cell, flushed as soon as its last
    // repeat arrives — so long sweeps stream rows while later cells are
    // still running on other job threads.
    std::size_t cells_done = 0, cells_failed = 0, cells_skipped = 0;
    Cell cell;
    auto on_cell = [&](std::size_t i, const CellResult &res) {
        if (cell.repeats.empty()) {
            std::size_t cell_idx = i / opt.repeat;
            cell.scenario = scenarios[cell_idx / opt.seeds.size()];
            cell.seed = opt.seeds[cell_idx % opt.seeds.size()];
        }
        cell.repeats.push_back(res);
        if (cell.repeats.size() < opt.repeat)
            return;
        if (cell.skipped()) {
            // Interrupted before this cell ran: partial output only.
            ++cells_skipped;
            cell = Cell{};
            return;
        }
        if (cell.failed())
            ++cells_failed;
        if (opt.csv)
            printCsvRow(opt, cell);
        else if (opt.json)
            printJsonCell(cell, cells_done == 0);
        else
            printTextRow(opt, cell);
        std::fflush(stdout);
        ++cells_done;
        cell = Cell{};
    };

    installInterruptHandler();
    runMatrix(specs, opt.jobs, on_cell, &g_interrupted);

    bool interrupted = g_interrupted.load(std::memory_order_relaxed);
    if (opt.json) {
        printJsonFooter(num_cells, cells_failed, cells_skipped,
                        interrupted);
        std::fflush(stdout);
    } else if (opt.csv && interrupted) {
        std::printf("# interrupted: %zu of %zu cells skipped\n",
                    cells_skipped, num_cells);
        std::fflush(stdout);
    }
    if (interrupted) {
        std::fprintf(stderr,
                     "paralog: interrupted — %zu of %zu cells skipped\n",
                     cells_skipped, num_cells);
        return 130;
    }
    if (cells_failed > 0) {
        std::fprintf(stderr, "paralog: %zu of %zu cells failed\n",
                     cells_failed, num_cells);
        return 1;
    }
    return 0;
}

// ----------------------------------------------------- daemon client

/** --submit: upload to paralogd, print its JSON verdict. */
int
runSubmit(const CliOptions &opt)
{
    paralog::daemon::SubmitOptions sopt;
    sopt.socketPath = opt.socketPath;
    if (opt.setFlags & kSetLifeguard)
        sopt.lifeguards = opt.lifeguards;
    paralog::daemon::SubmitResult res =
        paralog::daemon::submitTrace(opt.submitPath, sopt);
    if (!res.ok) {
        std::fprintf(stderr, "paralog: --submit: %s\n",
                     res.error.c_str());
        return 1;
    }
    std::printf("%s\n", res.responseJson.c_str());
    return res.status() == "ok" ? 0 : 1;
}

/** --migrate: rewrite a recording into --trace-format (default v2). */
int
runMigrate(const CliOptions &opt)
{
    std::uint32_t dst_format = opt.traceFormatSet ? opt.traceFormat : 2;
    paralog::trace::MigrateResult res = paralog::trace::migrateTrace(
        opt.migratePath, opt.outPath, dst_format);
    if (!res.ok) {
        std::fprintf(stderr, "paralog: --migrate: %s\n",
                     res.error.c_str());
        return 1;
    }
    std::printf("migrated %s (v%u, %llu bytes) -> %s (v%u, %llu bytes), "
                "%llu chunks\n",
                opt.migratePath.c_str(), res.srcFormat,
                static_cast<unsigned long long>(res.srcBytes),
                opt.outPath.c_str(), res.dstFormat,
                static_cast<unsigned long long>(res.dstBytes),
                static_cast<unsigned long long>(res.chunks));
    return 0;
}

/** --daemon-stats: print the metrics dump. */
int
runDaemonStats(const CliOptions &opt)
{
    std::string text, err;
    if (!paralog::daemon::fetchStats(opt.socketPath, text, err)) {
        std::fprintf(stderr, "paralog: --daemon-stats: %s\n",
                     err.c_str());
        return 1;
    }
    std::printf("%s\n", text.c_str());
    return 0;
}

} // namespace
} // namespace paralog::cli

int
main(int argc, char **argv)
{
    using namespace paralog::cli;

    ParseResult parsed = parseArgs(argc, argv);
    switch (parsed.status) {
      case ParseStatus::kHelp:
        std::printf("%s", usageText().c_str());
        return 0;
      case ParseStatus::kError:
        std::fprintf(stderr, "paralog: %s\n\n%s", parsed.error.c_str(),
                     usageText().c_str());
        return 2;
      case ParseStatus::kOk:
        break;
    }
    if (!parsed.options.migratePath.empty())
        return runMigrate(parsed.options);
    if (parsed.options.daemonStats)
        return runDaemonStats(parsed.options);
    if (!parsed.options.submitPath.empty())
        return runSubmit(parsed.options);
    if (!parsed.options.replayPath.empty()) {
        std::string err;
        if (!applyReplayHeader(parsed.options, err)) {
            std::fprintf(stderr, "paralog: --replay: %s\n", err.c_str());
            return 2;
        }
    }
    return runCliMatrix(parsed.options);
}
