#include "cli/args.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace paralog::cli {

namespace {

/// All values of each list-valued axis, in the order `all` expands to.
const std::vector<LifeguardKind> kAllLifeguards{
    LifeguardKind::kAddrCheck,
    LifeguardKind::kTaintCheck,
    LifeguardKind::kMemCheck,
    LifeguardKind::kLockSet,
};

const std::vector<MonitorMode> kAllModes{
    MonitorMode::kNoMonitoring,
    MonitorMode::kTimesliced,
    MonitorMode::kParallel,
};

constexpr std::uint32_t kMaxCores = 16;
constexpr std::uint32_t kMaxJobs = 64;
constexpr std::uint32_t kMaxRepeat = 1000;
constexpr std::uint32_t kMaxShards = ShadowMemory::kMaxShards;

/** Split "a,b,c" into views; empty pieces are kept (and rejected later). */
std::vector<std::string_view>
splitList(std::string_view value)
{
    std::vector<std::string_view> out;
    while (true) {
        std::size_t comma = value.find(',');
        out.push_back(value.substr(0, comma));
        if (comma == std::string_view::npos)
            return out;
        value.remove_prefix(comma + 1);
    }
}

bool
parseU64(std::string_view value, std::uint64_t &out)
{
    if (value.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : value) {
        if (c < '0' || c > '9')
            return false;
        if (v > (UINT64_MAX - (c - '0')) / 10)
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = v;
    return true;
}

/**
 * Parse a list-valued axis: `all` or comma-separated values, each
 * resolved by @p parse_one. Returns false with @p err set on failure.
 */
template <typename T, typename ParseOne>
bool
parseAxis(std::string_view flag, std::string_view value,
          const std::vector<T> &all, ParseOne parse_one,
          std::vector<T> &out, std::string &err)
{
    if (value == "all") {
        out = all;
        return true;
    }
    out.clear();
    for (std::string_view piece : splitList(value)) {
        T one;
        if (!parse_one(piece, one)) {
            err = "invalid value '" + std::string(piece) + "' for " +
                  std::string(flag);
            return false;
        }
        if (std::find(out.begin(), out.end(), one) == out.end())
            out.push_back(one);
    }
    return true;
}

} // namespace

const char *
flagName(WorkloadKind w)
{
    switch (w) {
      case WorkloadKind::kBarnes:       return "barnes";
      case WorkloadKind::kLu:           return "lu";
      case WorkloadKind::kOcean:        return "ocean";
      case WorkloadKind::kFmm:          return "fmm";
      case WorkloadKind::kRadiosity:    return "radiosity";
      case WorkloadKind::kBlackscholes: return "blackscholes";
      case WorkloadKind::kFluidanimate: return "fluidanimate";
      case WorkloadKind::kSwaptions:    return "swaptions";
    }
    return "?";
}

const char *
flagName(LifeguardKind lg)
{
    switch (lg) {
      case LifeguardKind::kTaintCheck: return "taintcheck";
      case LifeguardKind::kAddrCheck:  return "addrcheck";
      case LifeguardKind::kMemCheck:   return "memcheck";
      case LifeguardKind::kLockSet:    return "lockset";
    }
    return "?";
}

const char *
flagName(MonitorMode m)
{
    switch (m) {
      case MonitorMode::kNoMonitoring: return "none";
      case MonitorMode::kTimesliced:   return "timesliced";
      case MonitorMode::kParallel:     return "parallel";
    }
    return "?";
}

const char *
flagName(DepTracking d)
{
    switch (d) {
      case DepTracking::kPerBlock: return "per-block";
      case DepTracking::kPerCore:  return "per-core";
    }
    return "?";
}

const char *
flagName(MemoryModel m)
{
    switch (m) {
      case MemoryModel::kSC:  return "sc";
      case MemoryModel::kTSO: return "tso";
    }
    return "?";
}

bool
parseWorkload(std::string_view name, WorkloadKind &out)
{
    for (WorkloadKind w : allWorkloads()) {
        if (name == flagName(w)) {
            out = w;
            return true;
        }
    }
    return false;
}

bool
parseLifeguard(std::string_view name, LifeguardKind &out)
{
    for (LifeguardKind lg : kAllLifeguards) {
        if (name == flagName(lg)) {
            out = lg;
            return true;
        }
    }
    return false;
}

bool
parseMode(std::string_view name, MonitorMode &out)
{
    for (MonitorMode m : kAllModes) {
        if (name == flagName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

bool
parseBool(std::string_view value, bool &out)
{
    if (value == "on" || value == "true" || value == "1" || value == "yes") {
        out = true;
        return true;
    }
    if (value == "off" || value == "false" || value == "0" || value == "no") {
        out = false;
        return true;
    }
    return false;
}

std::vector<Scenario>
CliOptions::scenarios() const
{
    std::vector<Scenario> out;
    for (WorkloadKind w : workloads) {
        for (LifeguardKind lg : lifeguards) {
            for (MonitorMode m : modes) {
                // The no-monitoring baseline runs no lifeguard: emit it
                // once per (workload, cores), not once per lifeguard.
                if (m == MonitorMode::kNoMonitoring &&
                    lg != lifeguards.front())
                    continue;
                for (std::uint32_t c : cores)
                    out.push_back(Scenario{w, lg, m, c});
            }
        }
    }
    return out;
}

ExperimentOptions
CliOptions::experimentOptions() const
{
    ExperimentOptions opt;
    opt.scale = scale;
    opt.accelerators = accelerators;
    opt.depTracking = depTracking;
    opt.memoryModel = memoryModel;
    opt.conflictAlerts = conflictAlerts;
    opt.seed = seeds.front();
    opt.logBufferBytes = logBufferBytes;
    opt.shadowShards = shadowShards;
    opt.maxCycles = maxCycles;
    opt.lgThreads = lgThreads;
    opt.decodeJobs = decodeJobs;
    return opt;
}

std::vector<RunSpec>
CliOptions::runSpecs() const
{
    std::vector<RunSpec> specs;
    ExperimentOptions base = experimentOptions();
    for (const Scenario &s : scenarios()) {
        for (std::uint64_t seed : seeds) {
            ExperimentOptions opt = base;
            opt.seed = seed;
            for (std::uint32_t r = 0; r < repeat; ++r)
                specs.push_back(RunSpec{s.workload, s.lifeguard, s.mode,
                                        s.cores, opt, recordPath,
                                        traceFormat, replayPath});
        }
    }
    return specs;
}

std::string
usageText()
{
    std::ostringstream os;
    os << "Usage: paralog [flags]\n"
       << "\n"
       << "Run ParaLog monitoring scenarios (the paper's experiment\n"
       << "matrix) and print per-run statistics. List-valued flags take\n"
       << "comma-separated values or 'all'; the full cross product runs.\n"
       << "\n"
       << "Scenario axes:\n"
       << "  --workload=LIST   ";
    for (WorkloadKind w : allWorkloads())
        os << flagName(w) << (w == allWorkloads().back() ? "" : "|");
    os << "  (default lu)\n"
       << "  --lifeguard=LIST  addrcheck|taintcheck|memcheck|lockset"
       << "  (default taintcheck)\n"
       << "  --mode=LIST       none|timesliced|parallel  (default parallel)\n"
       << "  --cores=LIST      application threads, 1.." << kMaxCores
       << "  (default 4)\n"
       << "  --seed=LIST       workload RNG seeds; a list sweeps the\n"
       << "                    matrix once per seed (default 1)\n"
       << "\n"
       << "Platform knobs (apply to every scenario):\n"
       << "  --accel=on|off          hardware accelerators (IT/IF/M-TLB)\n"
       << "  --dep-tracking=per-block|per-core\n"
       << "  --memory-model=sc|tso   (tso is incompatible with "
       << "--mode=timesliced)\n"
       << "  --conflict-alerts=on|off\n"
       << "  --scale=N               per-thread work units (default 20000)\n"
       << "  --log-buffer=BYTES      log buffer capacity (default 65536)\n"
       << "  --shadow-shards=N       shadow-memory shards, power of two "
       << "<= " << kMaxShards << "\n"
       << "                          (default 0 = one per lifeguard "
       << "core; results\n"
       << "                          are bit-identical for any value)\n"
       << "  --max-cycles=N          simulated-time watchdog override\n"
       << "\n"
       << "Record / replay (paralog-trace-v1/v2, see README):\n"
       << "  --record=FILE  persist the run's event-stream journal; the\n"
       << "                 matrix must be a single parallel-mode cell\n"
       << "  --trace-format=v1|v2\n"
       << "                 container version --record writes or\n"
       << "                 --migrate produces (record default v1;\n"
       << "                 migrate default v2). Readers auto-detect\n"
       << "  --replay=FILE  re-monitor a recording (no application\n"
       << "                 simulation); scenario axes come from the\n"
       << "                 file. --lifeguard=LIST replays once per\n"
       << "                 listed lifeguard; replaying the recorded\n"
       << "                 lifeguard is self-checked bit-identical\n"
       << "                 against the recorded results\n"
       << "  --lg-threads=N run the lifeguard cores on N host threads,\n"
       << "                 live or replay (0/1 = serial engine). N >= 2\n"
       << "                 selects the concurrent engine: analysis\n"
       << "                 fingerprints stay identical to serial,\n"
       << "                 simulated timing is relaxed. Composes with\n"
       << "                 --record (the journal replays result-exact)\n"
       << "  --decode-jobs=N\n"
       << "                 pre-decode a v2 recording's op chunks on N\n"
       << "                 worker threads at replay open (default 1 =\n"
       << "                 lazy serial decode). Wall-clock knob only:\n"
       << "                 results are identical for any value\n"
       << "  --migrate=SRC  rewrite the recording at SRC into --out=DST\n"
       << "                 using --trace-format (v1<->v2 both ways);\n"
       << "                 replay results are bit-identical across the\n"
       << "                 conversion. No other flags apply\n"
       << "  --out=DST      the --migrate target path\n"
       << "\n"
       << "Monitoring service (a running paralogd, see README):\n"
       << "  --submit=FILE   upload a recording to the daemon for\n"
       << "                  re-monitoring and print its JSON verdict;\n"
       << "                  --lifeguard=LIST selects the monitors\n"
       << "                  (default: the recorded one)\n"
       << "  --socket=PATH   the paralogd Unix-domain socket\n"
       << "  --daemon-stats  print the daemon's metrics dump\n"
       << "\n"
       << "Matrix execution:\n"
       << "  --jobs=N     run cells on N host threads (default 1); each\n"
       << "               cell owns its platform, so results are\n"
       << "               identical for any N and reported in cell order\n"
       << "  --repeat=K   run each cell K times and aggregate\n"
       << "               min/median/max per stat (default 1)\n"
       << "\n"
       << "Output (a failed cell is marked and the exit code is 1):\n"
       << "  --csv        one CSV row per cell (header first; seed and\n"
       << "               repeat columns appear only when sweeping)\n"
       << "  --json       one JSON document for the whole matrix\n"
       << "  --describe   print the Table-1 configuration before each run\n"
       << "  --verbose    keep simulator warnings on stderr\n"
       << "  --help       this text\n"
       << "\n"
       << "Examples:\n"
       << "  paralog --workload=lu --lifeguard=taintcheck --mode=parallel "
       << "--cores=4\n"
       << "  paralog --workload=all --mode=none,parallel --cores=1,2,4,8 "
       << "--csv\n"
       << "  paralog --workload=all --cores=1,2,4,8 --seed=1,2,3 "
       << "--repeat=3 --jobs=4 --json\n"
       << "  paralog --workload=ocean --memory-model=tso --accel=off\n"
       << "  paralog --workload=lu --lifeguard=taintcheck --cores=4 "
       << "--record=lu.trace\n"
       << "  paralog --replay=lu.trace --lifeguard=all --json\n"
       << "  paralog --migrate=lu.trace --out=lu.v2.trace\n"
       << "  paralog --submit=lu.trace --socket=/tmp/paralogd.sock "
       << "--lifeguard=all\n";
    return os.str();
}

namespace {

/// A valued flag: one table entry drives both dispatch and the
/// "requires a value" diagnostic, so they cannot drift apart.
struct ValuedFlag
{
    const char *name;
    bool (*parse)(std::string_view flag, std::string_view value,
                  CliOptions &o, std::string &err);
    /// SetFlag bit marked when the flag appears (0 = not an axis).
    std::uint32_t setBit = 0;
};

const ValuedFlag kValuedFlags[] = {
    {"--workload",
     [](std::string_view flag, std::string_view value, CliOptions &o,
        std::string &err) {
         return parseAxis(flag, value, allWorkloads(), parseWorkload,
                          o.workloads, err);
     },
     kSetWorkload},
    {"--lifeguard",
     [](std::string_view flag, std::string_view value, CliOptions &o,
        std::string &err) {
         return parseAxis(flag, value, kAllLifeguards, parseLifeguard,
                          o.lifeguards, err);
     },
     kSetLifeguard},
    {"--mode",
     [](std::string_view flag, std::string_view value, CliOptions &o,
        std::string &err) {
         return parseAxis(flag, value, kAllModes, parseMode, o.modes,
                          err);
     },
     kSetMode},
    {"--cores",
     [](std::string_view flag, std::string_view value, CliOptions &o,
        std::string &err) {
         auto parse_one = [](std::string_view v, std::uint32_t &out) {
             std::uint64_t n = 0;
             if (!parseU64(v, n) || n < 1 || n > kMaxCores)
                 return false;
             out = static_cast<std::uint32_t>(n);
             return true;
         };
         const std::vector<std::uint32_t> all_cores{1, 2, 4, 8};
         return parseAxis(flag, value, all_cores, parse_one, o.cores,
                          err);
     },
     kSetCores},
    {"--accel",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         if (parseBool(value, o.accelerators))
             return true;
         err = "invalid value '" + std::string(value) +
               "' for --accel (want on|off)";
         return false;
     },
     kSetAccel},
    {"--conflict-alerts",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         if (parseBool(value, o.conflictAlerts))
             return true;
         err = "invalid value '" + std::string(value) +
               "' for --conflict-alerts (want on|off)";
         return false;
     },
     kSetConflictAlerts},
    {"--dep-tracking",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         if (value == "per-block") {
             o.depTracking = DepTracking::kPerBlock;
             return true;
         }
         if (value == "per-core") {
             o.depTracking = DepTracking::kPerCore;
             return true;
         }
         err = "invalid value '" + std::string(value) +
               "' for --dep-tracking (want per-block|per-core)";
         return false;
     },
     kSetDepTracking},
    {"--memory-model",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         if (value == "sc") {
             o.memoryModel = MemoryModel::kSC;
             return true;
         }
         if (value == "tso") {
             o.memoryModel = MemoryModel::kTSO;
             return true;
         }
         err = "invalid value '" + std::string(value) +
               "' for --memory-model (want sc|tso)";
         return false;
     },
     kSetMemoryModel},
    {"--scale",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         if (parseU64(value, o.scale) && o.scale > 0)
             return true;
         err = "invalid value '" + std::string(value) +
               "' for --scale (want a positive integer)";
         return false;
     },
     kSetScale},
    {"--seed",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         o.seeds.clear();
         for (std::string_view piece : splitList(value)) {
             std::uint64_t s = 0;
             if (!parseU64(piece, s)) {
                 err = "invalid value '" + std::string(piece) +
                       "' for --seed (want comma-separated integers)";
                 return false;
             }
             if (std::find(o.seeds.begin(), o.seeds.end(), s) ==
                 o.seeds.end())
                 o.seeds.push_back(s);
         }
         return true;
     },
     kSetSeed},
    {"--repeat",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         std::uint64_t n = 0;
         if (parseU64(value, n) && n >= 1 && n <= kMaxRepeat) {
             o.repeat = static_cast<std::uint32_t>(n);
             return true;
         }
         err = "invalid value '" + std::string(value) +
               "' for --repeat (want 1.." + std::to_string(kMaxRepeat) +
               ")";
         return false;
     }},
    {"--jobs",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         std::uint64_t n = 0;
         if (parseU64(value, n) && n >= 1 && n <= kMaxJobs) {
             o.jobs = static_cast<std::uint32_t>(n);
             return true;
         }
         err = "invalid value '" + std::string(value) +
               "' for --jobs (want 1.." + std::to_string(kMaxJobs) + ")";
         return false;
     }},
    {"--shadow-shards",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         std::uint64_t n = 0;
         if (parseU64(value, n) && n <= kMaxShards &&
             (n == 0 || (n & (n - 1)) == 0)) {
             o.shadowShards = static_cast<std::uint32_t>(n);
             return true;
         }
         err = "invalid value '" + std::string(value) +
               "' for --shadow-shards (want 0 for auto, or a power of "
               "two <= " +
               std::to_string(kMaxShards) + ")";
         return false;
     }},
    {"--max-cycles",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         if (parseU64(value, o.maxCycles) && o.maxCycles > 0)
             return true;
         err = "invalid value '" + std::string(value) +
               "' for --max-cycles (want a positive cycle count)";
         return false;
     }},
    {"--log-buffer",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         if (parseU64(value, o.logBufferBytes) && o.logBufferBytes > 0)
             return true;
         err = "invalid value '" + std::string(value) +
               "' for --log-buffer (want a positive byte count)";
         return false;
     },
     kSetLogBuffer},
    {"--lg-threads",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         std::uint64_t n = 0;
         if (parseU64(value, n) && n <= kMaxJobs) {
             o.lgThreads = static_cast<std::uint32_t>(n);
             o.lgThreadsSet = true;
             return true;
         }
         err = "invalid value '" + std::string(value) +
               "' for --lg-threads (want 0.." + std::to_string(kMaxJobs) +
               "; 0/1 = serial)";
         return false;
     }},
    {"--record",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         if (!value.empty()) {
             o.recordPath = std::string(value);
             return true;
         }
         err = "--record needs a file path (--record=FILE)";
         return false;
     }},
    {"--trace-format",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         if (value == "v1" || value == "1") {
             o.traceFormat = 1;
             o.traceFormatSet = true;
             return true;
         }
         if (value == "v2" || value == "2") {
             o.traceFormat = 2;
             o.traceFormatSet = true;
             return true;
         }
         err = "invalid value '" + std::string(value) +
               "' for --trace-format (want v1|v2)";
         return false;
     }},
    {"--migrate",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         if (!value.empty()) {
             o.migratePath = std::string(value);
             return true;
         }
         err = "--migrate needs a trace path (--migrate=SRC)";
         return false;
     }},
    {"--out",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         if (!value.empty()) {
             o.outPath = std::string(value);
             return true;
         }
         err = "--out needs a file path (--out=DST)";
         return false;
     }},
    {"--decode-jobs",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         std::uint64_t n = 0;
         if (parseU64(value, n) && n >= 1 && n <= kMaxJobs) {
             o.decodeJobs = static_cast<std::uint32_t>(n);
             o.decodeJobsSet = true;
             return true;
         }
         err = "invalid value '" + std::string(value) +
               "' for --decode-jobs (want 1.." + std::to_string(kMaxJobs) +
               ")";
         return false;
     }},
    {"--replay",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         if (!value.empty()) {
             o.replayPath = std::string(value);
             return true;
         }
         err = "--replay needs a file path (--replay=FILE)";
         return false;
     }},
    {"--submit",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         if (!value.empty()) {
             o.submitPath = std::string(value);
             return true;
         }
         err = "--submit needs a file path (--submit=FILE)";
         return false;
     }},
    {"--socket",
     [](std::string_view, std::string_view value, CliOptions &o,
        std::string &err) {
         if (!value.empty()) {
             o.socketPath = std::string(value);
             return true;
         }
         err = "--socket needs a socket path (--socket=PATH)";
         return false;
     }},
};

/// Flags that take no value, mapped to the CliOptions field they set.
const std::pair<const char *, bool CliOptions::*> kNoValueFlags[] = {
    {"--csv", &CliOptions::csv},
    {"--json", &CliOptions::json},
    {"--describe", &CliOptions::describe},
    {"--verbose", &CliOptions::verbose},
    {"--daemon-stats", &CliOptions::daemonStats},
};

} // namespace

ParseResult
parseArgs(const std::vector<std::string_view> &args)
{
    ParseResult res;
    CliOptions &o = res.options;

    auto fail = [&res](std::string msg) {
        res.status = ParseStatus::kError;
        res.error = std::move(msg);
        return res;
    };

    for (std::string_view arg : args) {
        if (arg == "--help" || arg == "-h") {
            res.status = ParseStatus::kHelp;
            return res;
        }
        std::size_t eq = arg.find('=');
        std::string_view flag = arg.substr(0, eq);
        bool matched = false;

        for (const auto &[name, field] : kNoValueFlags) {
            if (flag != name)
                continue;
            if (eq != std::string_view::npos)
                return fail("flag '" + std::string(flag) +
                            "' takes no value");
            o.*field = true;
            matched = true;
            break;
        }
        if (matched)
            continue;

        if (arg.substr(0, 2) != "--")
            return fail("unexpected argument '" + std::string(arg) + "'");
        if (eq != std::string_view::npos && flag == "--help")
            return fail("flag '--help' takes no value");

        for (const ValuedFlag &vf : kValuedFlags) {
            if (flag != vf.name)
                continue;
            if (eq == std::string_view::npos)
                return fail("flag '" + std::string(flag) +
                            "' requires a value (" + std::string(flag) +
                            "=...)");
            std::string err;
            if (!vf.parse(flag, arg.substr(eq + 1), o, err))
                return fail(err);
            o.setFlags |= vf.setBit;
            matched = true;
            break;
        }
        if (!matched)
            return fail("unknown flag '" + std::string(flag) + "'");
    }

    // Cross-axis validation: the TIMESLICED baseline interleaves all app
    // threads on one core, which models SC by construction; a TSO run of
    // it would silently measure the wrong machine.
    bool timesliced =
        std::find(o.modes.begin(), o.modes.end(),
                  MonitorMode::kTimesliced) != o.modes.end();
    if (timesliced && o.memoryModel == MemoryModel::kTSO)
        return fail("--mode=timesliced is incompatible with "
                    "--memory-model=tso (the timesliced baseline is "
                    "sequentially consistent by construction)");

    if (o.csv && o.json)
        return fail("--csv and --json are mutually exclusive (pick one "
                    "machine-readable format)");

    if (!o.recordPath.empty() && !o.replayPath.empty())
        return fail("--record and --replay are mutually exclusive");

    // --record persists exactly one run: a multi-cell matrix would
    // overwrite the file once per cell.
    if (!o.recordPath.empty()) {
        if (o.modes.size() != 1 || o.modes[0] != MonitorMode::kParallel)
            return fail("--record requires --mode=parallel (the "
                        "baselines have no event streams to record)");
        if (o.workloads.size() != 1 || o.lifeguards.size() != 1 ||
            o.cores.size() != 1 || o.seeds.size() != 1 || o.repeat != 1)
            return fail("--record captures a single run: use exactly one "
                        "workload, lifeguard, core count and seed, and "
                        "no --repeat");
    }

    // --lg-threads selects the lifeguard cores' host threading, live or
    // replay; 0/1 is the serial engine everywhere and --record composes
    // with either (a live-parallel recording carries a header bit and
    // replays result-exact through the concurrent replay engine). The
    // only hard conflict is disabling ConflictAlerts: the concurrent
    // engines rely on their two-sided barriers for cross-stream
    // ordering, with no serial scheduler to fall back on.
    if (o.lgThreadsSet && o.lgThreads >= 2 && o.replayPath.empty() &&
        !o.conflictAlerts)
        return fail("--lg-threads=N (N >= 2) relies on the ConflictAlert "
                    "barriers and cannot be combined with "
                    "--conflict-alerts=off");

    // --decode-jobs tunes the replay reader's eager v2-chunk decode; it
    // never changes results, but accepting it elsewhere would imply it
    // does something there.
    if (o.decodeJobsSet && o.replayPath.empty())
        return fail("--decode-jobs applies to replay only (combine it "
                    "with --replay=FILE)");

    // --trace-format picks the container --record writes or --migrate
    // produces; replay and live runs auto-detect.
    if (o.traceFormatSet && o.recordPath.empty() && o.migratePath.empty())
        return fail("--trace-format applies to --record and --migrate "
                    "(readers auto-detect the version)");

    // --migrate is an offline file rewrite: no simulation, no scenario.
    if (!o.outPath.empty() && o.migratePath.empty())
        return fail("--out does nothing without --migrate=SRC");
    if (!o.migratePath.empty()) {
        if (o.outPath.empty())
            return fail("--migrate needs a target path (--out=DST)");
        if (!o.recordPath.empty() || !o.replayPath.empty() ||
            !o.submitPath.empty() || o.daemonStats)
            return fail("--migrate is mutually exclusive with --record, "
                        "--replay, --submit and --daemon-stats");
        if (o.setFlags != 0 || o.lgThreadsSet || o.decodeJobsSet)
            return fail("--migrate rewrites the recording as-is; only "
                        "--trace-format may be combined with it");
    }

    // --replay takes every scenario axis from the recording; only the
    // lifeguard may be overridden (re-monitoring under a different
    // monitor is the point of record-once/replay-many).
    if (!o.replayPath.empty() &&
        (o.setFlags & ~static_cast<std::uint32_t>(kSetLifeguard)) != 0)
        return fail("--replay takes the scenario and platform axes from "
                    "the recording; only --lifeguard (and output/"
                    "execution flags) may be combined with it");

    // Daemon-client modes: small, exclusive, and socket-bound.
    if (!o.submitPath.empty() && o.daemonStats)
        return fail("--submit and --daemon-stats are mutually exclusive");
    if ((!o.submitPath.empty() || o.daemonStats) && o.socketPath.empty())
        return fail("--submit/--daemon-stats need --socket=PATH (the "
                    "paralogd socket)");
    if (o.socketPath.empty() == false && o.submitPath.empty() &&
        !o.daemonStats)
        return fail("--socket does nothing without --submit or "
                    "--daemon-stats");
    if (!o.submitPath.empty() &&
        (!o.replayPath.empty() || !o.recordPath.empty()))
        return fail("--submit is mutually exclusive with --record and "
                    "--replay (the daemon does the re-monitoring)");
    if (!o.submitPath.empty() &&
        (o.setFlags & ~static_cast<std::uint32_t>(kSetLifeguard)) != 0)
        return fail("--submit sends the recording as-is; only "
                    "--lifeguard may be combined with it");

    return res;
}

ParseResult
parseArgs(int argc, const char *const *argv)
{
    std::vector<std::string_view> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    return parseArgs(args);
}

} // namespace paralog::cli
