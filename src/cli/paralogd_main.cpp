/**
 * @file
 * `paralogd` entry point: parse the service flags, start the daemon
 * (daemon/daemon.hpp), serve until SIGTERM/SIGINT, drain, exit 0.
 * A second signal hard-exits — same two-stage convention as the
 * matrix driver's Ctrl-C handling.
 */

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "daemon/daemon.hpp"

namespace {

paralog::daemon::Daemon *g_daemon = nullptr;
std::atomic<int> g_signals{0};

extern "C" void
onShutdownSignal(int)
{
    if (g_signals.fetch_add(1, std::memory_order_relaxed) >= 1)
        ::_exit(130);
    if (g_daemon)
        g_daemon->requestStop(); // async-signal-safe
}

const char kUsage[] =
    "Usage: paralogd --socket=PATH [flags]\n"
    "\n"
    "Serve paralog-trace-v1 re-monitoring jobs over a Unix-domain\n"
    "socket until SIGTERM/SIGINT, then drain and exit 0. Submit with\n"
    "`paralog --submit=FILE --socket=PATH`; inspect with\n"
    "`paralog --daemon-stats --socket=PATH`.\n"
    "\n"
    "  --socket=PATH          listening socket (required)\n"
    "  --workers=N            re-monitoring worker threads (default 2)\n"
    "  --max-sessions=N       concurrent client cap; excess connections\n"
    "                         are answered 'rejected' (default 64)\n"
    "  --max-queued=N         job-queue cap; completed uploads beyond it\n"
    "                         are shed with 'queue-full' (default 8)\n"
    "  --max-ingest-mb=N      per-upload size budget (default 256)\n"
    "  --idle-timeout-ms=N    close sessions idle this long (default\n"
    "                         5000; the slow-loris defense)\n"
    "  --heartbeat-ms=N       PLHB cadence to waiting clients (500)\n"
    "  --lg-threads=N         host lifeguard threads per replay job\n"
    "                         (0/1 = serial engine)\n"
    "  --spool-dir=PATH       upload spool directory\n"
    "                         (default: <socket>.spool)\n"
    "  --verbose              log connections and drain progress\n"
    "  --help                 this text\n";

bool
parseU64Flag(const std::string &arg, const char *name,
             std::uint64_t &out)
{
    std::string prefix = std::string(name) + "=";
    if (arg.compare(0, prefix.size(), prefix) != 0)
        return false;
    char *end = nullptr;
    unsigned long long v =
        std::strtoull(arg.c_str() + prefix.size(), &end, 10);
    if (!end || *end != '\0') {
        std::fprintf(stderr, "paralogd: bad value in '%s'\n",
                     arg.c_str());
        std::exit(2);
    }
    out = v;
    return true;
}

bool
parseStringFlag(const std::string &arg, const char *name,
                std::string &out)
{
    std::string prefix = std::string(name) + "=";
    if (arg.compare(0, prefix.size(), prefix) != 0)
        return false;
    out = arg.substr(prefix.size());
    if (out.empty()) {
        std::fprintf(stderr, "paralogd: '%s' needs a value\n", name);
        std::exit(2);
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    paralog::daemon::DaemonConfig cfg;
    cfg.quiet = true;

    std::uint64_t u = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf("%s", kUsage);
            return 0;
        }
        if (arg == "--verbose") {
            cfg.quiet = false;
            continue;
        }
        if (parseStringFlag(arg, "--socket", cfg.socketPath) ||
            parseStringFlag(arg, "--spool-dir", cfg.spoolDir))
            continue;
        if (parseU64Flag(arg, "--workers", u)) {
            cfg.workers = static_cast<unsigned>(u);
            continue;
        }
        if (parseU64Flag(arg, "--max-sessions", u)) {
            cfg.maxSessions = static_cast<std::size_t>(u);
            continue;
        }
        if (parseU64Flag(arg, "--max-queued", u)) {
            cfg.maxQueuedJobs = static_cast<std::size_t>(u);
            continue;
        }
        if (parseU64Flag(arg, "--max-ingest-mb", u)) {
            cfg.maxIngestBytes = u << 20;
            continue;
        }
        if (parseU64Flag(arg, "--idle-timeout-ms", u)) {
            cfg.idleTimeoutMs = static_cast<int>(u);
            continue;
        }
        if (parseU64Flag(arg, "--heartbeat-ms", u)) {
            cfg.heartbeatMs = static_cast<int>(u);
            continue;
        }
        if (parseU64Flag(arg, "--lg-threads", u)) {
            cfg.lgThreads = static_cast<std::uint32_t>(u);
            continue;
        }
        std::fprintf(stderr, "paralogd: unknown flag '%s'\n\n%s",
                     arg.c_str(), kUsage);
        return 2;
    }
    if (cfg.socketPath.empty()) {
        std::fprintf(stderr, "paralogd: --socket=PATH is required\n\n%s",
                     kUsage);
        return 2;
    }

    paralog::setQuiet(cfg.quiet);
    paralog::daemon::Daemon daemon(cfg);
    if (!daemon.start()) {
        std::fprintf(stderr, "paralogd: %s\n", daemon.error().c_str());
        return 1;
    }

    g_daemon = &daemon;
    struct sigaction sa = {};
    sa.sa_handler = onShutdownSignal;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    int rc = daemon.run();
    g_daemon = nullptr;
    return rc;
}
