/**
 * @file
 * `paralog-dump`: offline trace inspector for paralog-trace-v1/v2
 * files. Prints the decoded header, the chunk inventory, the footer,
 * and (with --ops=N) the first N decoded journal ops per thread.
 *
 * The output is fully deterministic for a given file — recordings are
 * themselves deterministic, so test goldens can pin it byte-for-byte.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "trace/format.hpp"
#include "trace/trace_reader.hpp"

namespace {

using namespace paralog;
using namespace paralog::trace;

const char *
chunkKindName(std::uint32_t kind)
{
    switch (kind) {
      case kChunkOps:         return "ops";
      case kChunkMetaLatency: return "latency";
      case kChunkFooter:      return "footer";
    }
    return "unknown";
}

const char *
opName(OpCode op)
{
    switch (op) {
      case OpCode::kRetire:          return "retire";
      case OpCode::kAppend:          return "append";
      case OpCode::kAppendCa:        return "append-ca";
      case OpCode::kAttachArcs:      return "attach-arcs";
      case OpCode::kAnnotateConsume: return "annotate-consume";
      case OpCode::kInsertProduce:   return "insert-produce";
      case OpCode::kVisLimit:        return "vis-limit";
      case OpCode::kCaBroadcast:     return "ca-broadcast";
    }
    return "?";
}

unsigned long long
ull(std::uint64_t v)
{
    return static_cast<unsigned long long>(v);
}

void
printHeader(const std::string &path, const TraceReader &reader)
{
    const TraceConfig &c = reader.config();
    // Basename only: dump output is pinned by golden tests, which must
    // not depend on where the corpus happens to be checked out.
    std::size_t slash = path.find_last_of('/');
    const char *base =
        path.c_str() + (slash == std::string::npos ? 0 : slash + 1);
    std::printf("%s: paralog-trace-v%u\n", base, reader.formatVersion());
    std::printf("header:\n");
    std::printf("  config fingerprint: 0x%016llx\n",
                ull(reader.configFingerprint()));
    std::printf("  workload:           %s\n", cli::flagName(c.workload));
    std::printf("  lifeguard:          %s\n", cli::flagName(c.lifeguard));
    std::printf("  mode:               %s\n", cli::flagName(c.mode));
    std::printf("  memory model:       %s\n",
                cli::flagName(c.memoryModel));
    std::printf("  dep tracking:       %s\n",
                cli::flagName(c.depTracking));
    std::printf("  conflict alerts:    %s\n",
                c.conflictAlerts ? "on" : "off");
    std::printf("  accelerators:       IT %s, IF %s, M-TLB %s\n",
                c.accelIT ? "on" : "off", c.accelIF ? "on" : "off",
                c.accelMTLB ? "on" : "off");
    std::printf("  filter bits:        0x%02x\n", c.filterBits);
    std::printf("  app threads:        %u\n", c.appThreads);
    std::printf("  shadow shards:      %u\n", c.shadowShards);
    std::printf("  scale:              %llu\n", ull(c.scale));
    std::printf("  seed:               %llu\n", ull(c.seed));
    std::printf("  log buffer:         %llu\n", ull(c.logBufferBytes));
    std::printf("  total ops:          %llu\n", ull(reader.totalOps()));
    std::printf("  total records:      %llu\n",
                ull(reader.totalRecords()));
}

void
printChunks(TraceReader &reader)
{
    std::printf("chunks:\n");
    std::printf("  %-5s %-8s %-6s %s\n", "idx", "kind", "tid", "bytes");
    std::uint64_t payload_bytes = 0;
    std::size_t per_kind[3] = {0, 0, 0}, unknown = 0;
    for (std::size_t i = 0; i < reader.chunkCount(); ++i) {
        std::uint32_t kind = reader.chunkKind(i);
        std::uint32_t tid = reader.chunkTid(i);
        char tid_buf[16];
        if (tid == kNoThread)
            std::snprintf(tid_buf, sizeof tid_buf, "-");
        else
            std::snprintf(tid_buf, sizeof tid_buf, "%u", tid);
        std::printf("  %-5zu %-8s %-6s %u\n", i, chunkKindName(kind),
                    tid_buf, reader.chunkBytes(i));
        payload_bytes += reader.chunkBytes(i);
        if (kind < 3)
            ++per_kind[kind];
        else
            ++unknown;
    }
    std::printf("  total: %zu chunks (%zu ops, %zu latency, %zu footer",
                reader.chunkCount(), per_kind[0], per_kind[1],
                per_kind[2]);
    if (unknown > 0)
        std::printf(", %zu unknown", unknown);
    std::printf("), %llu payload bytes\n", ull(payload_bytes));
}

void
printFooter(const TraceReader &reader)
{
    const TraceFooter &f = reader.footer();
    std::printf("footer:\n");
    std::printf("  total cycles:       %llu\n", ull(f.totalCycles));
    std::printf("  violations:         %llu\n", ull(f.violations));
    std::printf("  versions:           produced %llu, consumed %llu, "
                "stall retries %llu\n",
                ull(f.versionsProduced), ull(f.versionsConsumed),
                ull(f.versionStallRetries));
    std::printf("  shadow fingerprint: 0x%016llx\n",
                ull(f.shadowFingerprint));
    if (f.hasViolationFingerprint)
        std::printf("  violation fingerprint: 0x%016llx\n",
                    ull(f.violationFingerprint));
    else
        std::printf("  violation fingerprint: absent (pre-v2 tooling)\n");
    std::printf("  ops per thread:     [");
    for (std::size_t i = 0; i < f.opCount.size(); ++i)
        std::printf("%s%llu", i ? ", " : "", ull(f.opCount[i]));
    std::printf("]\n");
    std::printf("  records per thread: [");
    for (std::size_t i = 0; i < f.recordCount.size(); ++i)
        std::printf("%s%llu", i ? ", " : "", ull(f.recordCount[i]));
    std::printf("]\n");
}

/** Print the first @p max_ops decoded ops of thread @p tid. Returns
 *  false if the reader failed mid-stream. */
bool
printOps(TraceReader &reader, ThreadId tid, std::uint64_t max_ops)
{
    std::printf("ops[t%u]:\n", tid);
    TraceReader::OpStream stream = reader.opStream(tid);
    TraceOp op;
    std::uint64_t n = 0;
    while (n < max_ops && stream.next(op)) {
        std::printf("  %-16s gseq=%llu cycle=%llu lg=%llu", opName(op.op),
                    ull(op.gseq), ull(op.cycle), ull(op.lgStep));
        switch (op.op) {
          case OpCode::kRetire:
            std::printf(" retired=%llu", ull(op.retired));
            break;
          case OpCode::kAppend:
          case OpCode::kAppendCa:
            std::printf(" rid=%llu charged=%u", ull(op.rec.rid),
                        op.chargedBytes);
            break;
          case OpCode::kAttachArcs:
            std::printf(" rid=%llu arcs=%zu", ull(op.rid),
                        op.arcs.size());
            break;
          case OpCode::kAnnotateConsume:
            std::printf(" rid=%llu", ull(op.rid));
            break;
          case OpCode::kInsertProduce:
            std::printf(" addr=0x%llx size=%u", ull(op.addr), op.size);
            break;
          case OpCode::kVisLimit:
            std::printf(" limit=%llu", ull(op.visLimit));
            break;
          case OpCode::kCaBroadcast:
            std::printf(" seq=%llu waiters=%zu", ull(op.ca.seq),
                        op.ca.arrivalRid.size());
            break;
        }
        std::printf("\n");
        ++n;
    }
    return reader.ok();
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "Usage: %s [--ops=N] [--no-mmap] TRACE-FILE\n"
                 "\n"
                 "Print a paralog-trace-v1/v2 recording's header, chunk\n"
                 "inventory and footer; --ops=N also decodes the first\n"
                 "N journal ops of every thread. --no-mmap reads the\n"
                 "file onto the heap instead of mapping it.\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::uint64_t max_ops = 0;
    TraceReader::Options ropts;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        }
        if (arg == "--no-mmap") {
            ropts.preferMmap = false;
        } else if (arg.rfind("--ops=", 0) == 0) {
            char *end = nullptr;
            max_ops = std::strtoull(arg.c_str() + 6, &end, 10);
            if (end == nullptr || *end != '\0')
                return usage(argv[0]);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "paralog-dump: unknown flag '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (path.empty())
        return usage(argv[0]);

    TraceReader reader(path, ropts);
    if (!reader.ok()) {
        std::fprintf(stderr, "paralog-dump: %s\n",
                     reader.error().c_str());
        return 1;
    }

    printHeader(path, reader);
    printChunks(reader);
    printFooter(reader);
    if (max_ops > 0) {
        for (ThreadId t = 0; t < reader.config().appThreads; ++t) {
            if (!printOps(reader, t, max_ops)) {
                std::fprintf(stderr, "paralog-dump: %s\n",
                             reader.error().c_str());
                return 1;
            }
        }
    }
    return 0;
}
