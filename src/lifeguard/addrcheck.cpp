#include "lifeguard/addrcheck.hpp"

namespace paralog {

void
AddrCheck::checkAccess(const LgEvent &ev, LgContext &ctx)
{
    std::uint64_t bits;
    VersionStore::Versioned ver;
    if (ctx.consumeVersioned(ev, ver)) {
        // TSO: check against the allocation state the application
        // actually raced with (pre-overwrite snapshot).
        bits = ctx.versionedPacked(ver, ev.addr, ev.size);
    } else {
        bits = ctx.loadMeta(ev.addr, ev.size);
    }
    ctx.charge(2);
    // Every accessed byte must be allocated: with 1 bit/byte the packed
    // value must have all ev.size low bits set.
    std::uint64_t expect = (ev.size >= 64)
                               ? ~0ULL
                               : ((1ULL << ev.size) - 1);
    if ((bits & expect) != expect) {
        violations.report(Violation::Kind::kUnallocatedAccess, ev.tid,
                          ev.rid, ev.addr);
    }
}

void
AddrCheck::handle(const LgEvent &ev, LgContext &ctx)
{
    switch (ev.type) {
      case LgEventType::kLoad:
      case LgEventType::kStore:
        checkAccess(ev, ctx);
        break;

      case LgEventType::kMalloc:
        if (ev.range.empty()) {
            violations.report(Violation::Kind::kInvalidFree, ev.tid,
                              ev.rid, 0);
            break;
        }
        ctx.fillMeta(ev.range, kAllocated);
        break;

      case LgEventType::kFree:
        if (ev.range.empty()) {
            // The wrapper saw a free() of a non-live block.
            violations.report(Violation::Kind::kInvalidFree, ev.tid,
                              ev.rid, 0);
            break;
        }
        ctx.fillMeta(ev.range, kUnallocated);
        break;

      case LgEventType::kProduceVersion:
        // Stores never change allocation state, so the snapshot equals
        // live metadata — but the reader's version wait must still be
        // satisfied.
        ctx.produceSnapshot(ev);
        break;

      default:
        ctx.charge(1);
        break;
    }
}

} // namespace paralog
