/**
 * @file
 * LOCKSET lifeguard (Eraser-style data-race detector, extension).
 *
 * Demonstrates the section 5.3 discussion: LockSet violates condition 2
 * (application *reads* can cause metadata *writes* during state
 * refinement), so its read handlers are split into a synchronization-free
 * fast path (read-only metadata comparison) and a locked slow path (a
 * single metadata write under LgContext::atomicSlowPath cost).
 *
 * Metadata: 2 bits per application byte encoding the Eraser state
 * machine (virgin / exclusive / shared / shared-modified); candidate
 * lock sets are interned per 8-byte granule in a side table.
 */

#ifndef PARALOG_LIFEGUARD_LOCKSET_HPP
#define PARALOG_LIFEGUARD_LOCKSET_HPP

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "lifeguard/lifeguard.hpp"

namespace paralog {

class LockSet : public Lifeguard
{
  public:
    // Eraser state machine values stored in shadow memory.
    static constexpr std::uint8_t kVirgin = 0;
    static constexpr std::uint8_t kExclusive = 1;
    static constexpr std::uint8_t kShared = 2;
    static constexpr std::uint8_t kSharedModified = 3;

    explicit LockSet(std::uint32_t num_threads,
                     std::uint32_t shadow_shards = 1);

    const char *name() const override { return "LockSet"; }

    LifeguardPolicy
    policy() const override
    {
        LifeguardPolicy p;
        p.usesIt = false; // not propagation-style
        p.usesIf = false; // checks mutate state; not idempotent
        p.usesMtlb = true;
        p.wantsRegOps = false;
        p.wantsJumps = false;
        p.heapOnly = true;
        p.caOnMalloc = true;
        p.caOnFree = true;
        p.caOnSyscall = false;
        p.metadataBitsPerByte = 2;
        return p;
    }

    void handle(const LgEvent &ev, LgContext &ctx) override;

    std::uint8_t state(Addr addr) const { return shadow_.read(addr); }

    std::uint64_t fastPathHits = 0;
    std::uint64_t slowPathEntries = 0;

  private:
    using LockVec = std::vector<Addr>; ///< sorted lock addresses

    struct Granule
    {
        ThreadId firstOwner = kInvalidThread;
        std::uint32_t locksetId = 0;
    };

    /// State-tracking granule: one 2-bit Eraser state per 8-byte unit,
    /// kept in the shadow byte at the granule base. The TSO produce
    /// handler's snapshot layout depends on this and on the shadow's
    /// bits-per-byte staying in sync.
    static constexpr Addr kGranuleBytes = 8;

    static Addr
    granuleOf(Addr addr)
    {
        return addr & ~(kGranuleBytes - 1);
    }

    std::uint32_t internLockset(const LockVec &locks);
    const LockVec &locksetById(std::uint32_t id) const;
    std::uint32_t intersect(std::uint32_t id, const LockVec &held);

    void access(const LgEvent &ev, LgContext &ctx, bool is_write);

    std::vector<LockVec> heldLocks_;            ///< per thread, sorted
    std::map<LockVec, std::uint32_t> internMap_;
    std::vector<LockVec> locksets_;             ///< id -> set
    std::unordered_map<Addr, Granule> granules_;
};

} // namespace paralog

#endif // PARALOG_LIFEGUARD_LOCKSET_HPP
