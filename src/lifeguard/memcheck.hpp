/**
 * @file
 * MEMCHECK-style lifeguard (extension beyond the paper's evaluation,
 * mentioned in section 4.1): tracks the *initialized* state of every
 * memory byte and propagates it through registers, detecting reads of
 * uninitialized heap data. Like TaintCheck it is propagation-style and
 * benefits from IT; unlike TaintCheck its IT state conflicts with
 * malloc/free (fresh allocations reset initialized state), which is
 * exactly the high-level remote-conflict case the paper motivates IT
 * flushing with.
 */

#ifndef PARALOG_LIFEGUARD_MEMCHECK_HPP
#define PARALOG_LIFEGUARD_MEMCHECK_HPP

#include "lifeguard/lifeguard.hpp"

namespace paralog {

class MemCheck : public Lifeguard
{
  public:
    static constexpr std::uint8_t kUninit = 0;
    static constexpr std::uint8_t kInit = 1;

    explicit MemCheck(std::uint32_t num_threads,
                      std::uint32_t shadow_shards = 1)
        : Lifeguard(num_threads, 1, shadow_shards)
    {
        // Registers start initialized (they hold defined zeros).
        for (auto &regs : regMeta_)
            regs.fill(kInit);
    }

    const char *name() const override { return "MemCheck"; }

    LifeguardPolicy
    policy() const override
    {
        LifeguardPolicy p;
        p.usesIt = true;
        p.usesIf = false;
        p.usesMtlb = true;
        // Init bits are state transitions, not a lattice: a deferred
        // uninit-read check must run before the store that initializes
        // its bytes, so the self-RMW exemption is off (accel_config).
        p.itExemptSelfRmw = false;
        // Absorbed loads carry a deferred uninit-read check: a row
        // overwrite must deliver it, not drop it (accel_config).
        p.itFlushOnOverwrite = true;
        p.wantsRegOps = true;
        p.wantsJumps = false;
        p.heapOnly = false;
        p.caOnMalloc = true;
        p.caOnFree = true;
        p.caOnSyscall = true;
        p.itFlushOnAlloc = true;
        p.itFlushOnSyscall = true;
        p.metadataBitsPerByte = 1;
        return p;
    }

    void handle(const LgEvent &ev, LgContext &ctx) override;

    bool
    isInitialized(Addr addr, unsigned size) const
    {
        for (unsigned i = 0; i < size; ++i) {
            if (shadow_.read(addr + i) != kInit)
                return false;
        }
        return true;
    }

  private:
    static std::uint64_t
    ones(unsigned bytes)
    {
        return (bytes >= 64) ? ~0ULL : ((1ULL << bytes) - 1);
    }

    /// Only report uninitialized reads inside this range (the heap);
    /// set by the platform so globals/stack don't false-positive.
    AddrRange checkedRange_{0, kInvalidAddr};

  public:
    void setCheckedRange(const AddrRange &r) { checkedRange_ = r; }
};

} // namespace paralog

#endif // PARALOG_LIFEGUARD_MEMCHECK_HPP
