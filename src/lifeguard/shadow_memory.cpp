#include "lifeguard/shadow_memory.hpp"

#include "common/bitops.hpp"
#include "common/logging.hpp"

namespace paralog {

ShadowMemory::ShadowMemory(std::uint32_t bits_per_byte)
    : bitsPerByte_(bits_per_byte)
{
    PARALOG_ASSERT(bits_per_byte == 1 || bits_per_byte == 2 ||
                       bits_per_byte == 4 || bits_per_byte == 8,
                   "unsupported metadata ratio %u", bits_per_byte);
    valueMask_ = static_cast<std::uint8_t>((1u << bits_per_byte) - 1);
}

ShadowMemory::Chunk &
ShadowMemory::chunkFor(Addr app_addr)
{
    std::uint64_t idx = app_addr / kChunkAppBytes;
    auto it = chunks_.find(idx);
    if (it == chunks_.end()) {
        auto chunk = std::make_unique<Chunk>(
            kChunkAppBytes * bitsPerByte_ / 8, 0);
        it = chunks_.emplace(idx, std::move(chunk)).first;
    }
    return *it->second;
}

const ShadowMemory::Chunk *
ShadowMemory::chunkForConst(Addr app_addr) const
{
    auto it = chunks_.find(app_addr / kChunkAppBytes);
    return it == chunks_.end() ? nullptr : it->second.get();
}

std::uint8_t
ShadowMemory::read(Addr app_addr) const
{
    const Chunk *c = chunkForConst(app_addr);
    if (!c)
        return 0;
    std::uint64_t off = app_addr % kChunkAppBytes;
    std::uint64_t bit = off * bitsPerByte_;
    std::uint8_t byte = (*c)[bit / 8];
    return (byte >> (bit % 8)) & valueMask_;
}

void
ShadowMemory::write(Addr app_addr, std::uint8_t value)
{
    Chunk &c = chunkFor(app_addr);
    std::uint64_t off = app_addr % kChunkAppBytes;
    std::uint64_t bit = off * bitsPerByte_;
    std::uint8_t &byte = c[bit / 8];
    std::uint8_t shift = bit % 8;
    byte = static_cast<std::uint8_t>(
        (byte & ~(valueMask_ << shift)) | ((value & valueMask_) << shift));
}

std::uint64_t
ShadowMemory::readPacked(Addr app_addr, unsigned bytes) const
{
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < bytes && i < 8; ++i)
        bits |= static_cast<std::uint64_t>(read(app_addr + i))
                << (i * bitsPerByte_);
    return bits;
}

void
ShadowMemory::writePacked(Addr app_addr, unsigned bytes, std::uint64_t bits)
{
    for (unsigned i = 0; i < bytes && i < 8; ++i) {
        write(app_addr + i, static_cast<std::uint8_t>(
                                (bits >> (i * bitsPerByte_)) & valueMask_));
    }
}

bool
ShadowMemory::rangeAll(const AddrRange &range, std::uint8_t value) const
{
    return rangeFindNot(range, value) == kInvalidAddr;
}

Addr
ShadowMemory::rangeFindNot(const AddrRange &range, std::uint8_t value) const
{
    for (Addr a = range.begin; a < range.end; ++a) {
        if (read(a) != value)
            return a;
    }
    return kInvalidAddr;
}

void
ShadowMemory::fill(const AddrRange &range, std::uint8_t value)
{
    for (Addr a = range.begin; a < range.end; ++a)
        write(a, value);
}

} // namespace paralog
