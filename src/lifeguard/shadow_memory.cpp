#include "lifeguard/shadow_memory.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/logging.hpp"

namespace paralog {

// The packed/word-scan fast paths memcpy 64-bit words of the metadata
// byte array; the per-byte slow paths use little-endian bit shifts.
// Both must agree on byte order.
static_assert(std::endian::native == std::endian::little,
              "ShadowMemory word paths assume a little-endian host");

ShadowMemory::ShadowMemory(std::uint32_t bits_per_byte,
                           std::uint32_t shards)
    : bitsPerByte_(bits_per_byte)
{
    PARALOG_ASSERT(bits_per_byte == 1 || bits_per_byte == 2 ||
                       bits_per_byte == 4 || bits_per_byte == 8,
                   "unsupported metadata ratio %u", bits_per_byte);
    PARALOG_ASSERT(shards >= 1 && shards <= kMaxShards &&
                       (shards & (shards - 1)) == 0,
                   "shard count %u is not a power of two in [1, %u]",
                   shards, kMaxShards);
    valueMask_ = static_cast<std::uint8_t>((1u << bits_per_byte) - 1);
    chunkMetaBytes_ = kChunkAppBytes * bitsPerByte_ / 8;
    shardMask_ = shards - 1;
    shards_.resize(shards);
}

ShadowMemory::Chunk *
ShadowMemory::lookupChunk(Addr app_addr) const
{
    std::uint64_t idx = app_addr / kChunkAppBytes;
    Shard &sh = shardFor(idx);
    if (concurrent_) {
        // No shared last-chunk cache (it would be a cross-thread race);
        // the map itself is consulted under the shard lock. The chunk
        // pointer stays valid after unlock: chunk storage is stable.
        std::lock_guard<std::mutex> lock(sh.mapMutex);
        const std::unique_ptr<Chunk> *slot = sh.chunks.find(idx);
        return slot ? slot->get() : nullptr;
    }
    if (idx == sh.cachedIdx)
        return sh.cachedChunk;
    const std::unique_ptr<Chunk> *slot = sh.chunks.find(idx);
    if (!slot)
        return nullptr;
    sh.cachedIdx = idx;
    sh.cachedChunk = slot->get();
    return sh.cachedChunk;
}

ShadowMemory::Chunk &
ShadowMemory::ensureChunk(Addr app_addr)
{
    std::uint64_t idx = app_addr / kChunkAppBytes;
    Shard &sh = shardFor(idx);
    if (concurrent_) {
        std::lock_guard<std::mutex> lock(sh.mapMutex);
        std::unique_ptr<Chunk> &slot = sh.chunks[idx];
        if (!slot)
            slot = std::make_unique<Chunk>(chunkMetaBytes_, 0);
        return *slot;
    }
    if (idx == sh.cachedIdx)
        return *sh.cachedChunk;
    std::unique_ptr<Chunk> &slot = sh.chunks[idx];
    if (!slot)
        slot = std::make_unique<Chunk>(chunkMetaBytes_, 0);
    sh.cachedIdx = idx;
    sh.cachedChunk = slot.get();
    return *sh.cachedChunk;
}

std::uint8_t
ShadowMemory::patternByte(std::uint8_t value) const
{
    // Replicate the (masked) value across all metadata groups of one
    // backing byte: 0xFF / valueMask_ is 0xFF, 0x55, 0x11, 0x01 for
    // ratios 1, 2, 4, 8.
    return static_cast<std::uint8_t>((value & valueMask_) *
                                     (0xFFu / valueMask_));
}

std::uint8_t
ShadowMemory::read(Addr app_addr) const
{
    const Chunk *c = lookupChunk(app_addr);
    if (!c)
        return 0;
    std::uint64_t bit = (app_addr % kChunkAppBytes) * bitsPerByte_;
    return ((*c)[bit >> 3] >> (bit & 7)) & valueMask_;
}

void
ShadowMemory::write(Addr app_addr, std::uint8_t value)
{
    Chunk *c = lookupChunk(app_addr);
    if (!c) {
        // Chunks are zero-initialized: writing 0 to unmapped space is a
        // no-op, so e.g. clearing the metadata of untouched heap
        // allocates nothing.
        if ((value & valueMask_) == 0)
            return;
        c = &ensureChunk(app_addr);
    }
    std::uint64_t bit = (app_addr % kChunkAppBytes) * bitsPerByte_;
    std::uint8_t &byte = (*c)[bit >> 3];
    unsigned shift = bit & 7;
    byte = static_cast<std::uint8_t>(
        (byte & ~(valueMask_ << shift)) | ((value & valueMask_) << shift));
}

std::uint64_t
ShadowMemory::readPacked(Addr app_addr, unsigned bytes) const
{
    if (bytes > 8)
        bytes = 8;
    if (bytes == 0)
        return 0;
    std::uint64_t off = app_addr % kChunkAppBytes;
    if (off + bytes <= kChunkAppBytes) {
        const Chunk *c = lookupChunk(app_addr);
        if (!c)
            return 0;
        std::uint64_t bit = off * bitsPerByte_;
        std::uint64_t byte_idx = bit >> 3;
        unsigned shift = bit & 7;
        unsigned width = bytes * bitsPerByte_;
        std::uint64_t mask = (width == 64) ? ~0ULL : ((1ULL << width) - 1);
        if (concurrent_) {
            // Backing-byte-granular load: touch only the bytes the
            // field actually occupies, never a neighbour line's
            // metadata (see the header's concurrency notes). shift +
            // width <= 64 for every supported ratio, so the assembled
            // value fits one word.
            unsigned nb = (shift + width + 7) / 8;
            const std::uint8_t *d = c->data();
            std::uint64_t word = 0;
            for (unsigned i = 0; i < nb; ++i)
                word |= static_cast<std::uint64_t>(d[byte_idx + i])
                        << (8 * i);
            return (word >> shift) & mask;
        }
        // One unaligned 64-bit load covers the whole packed value: the
        // field is bytes * bitsPerByte_ <= 64 bits wide and starts at a
        // sub-byte shift of at most 8 - bitsPerByte_, which never
        // pushes it past the loaded word.
        if (byte_idx + 8 <= chunkMetaBytes_) {
            std::uint64_t word;
            std::memcpy(&word, c->data() + byte_idx, 8);
            word >>= shift;
            return word & mask;
        }
    }
    return readPackedSlow(app_addr, bytes);
}

std::uint64_t
ShadowMemory::readPackedSlow(Addr app_addr, unsigned bytes) const
{
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < bytes; ++i)
        bits |= static_cast<std::uint64_t>(read(app_addr + i))
                << (i * bitsPerByte_);
    return bits;
}

void
ShadowMemory::writePacked(Addr app_addr, unsigned bytes, std::uint64_t bits)
{
    if (bytes > 8)
        bytes = 8;
    if (bytes == 0)
        return;
    std::uint64_t off = app_addr % kChunkAppBytes;
    if (off + bytes <= kChunkAppBytes) {
        unsigned width = bytes * bitsPerByte_;
        std::uint64_t mask = (width == 64) ? ~0ULL : ((1ULL << width) - 1);
        bits &= mask;
        Chunk *c = lookupChunk(app_addr);
        if (!c) {
            if (bits == 0)
                return; // zero-write elision, as in write()
            c = &ensureChunk(app_addr);
        }
        std::uint64_t bit = off * bitsPerByte_;
        std::uint64_t byte_idx = bit >> 3;
        unsigned shift = bit & 7;
        if (concurrent_) {
            // Backing-byte-granular read-modify-write. Every touched
            // byte covers an aligned application granule overlapping
            // the accessed bytes, i.e. lines this access is ordered
            // against — a 64-bit RMW would instead clobber concurrent
            // updates to neighbour lines' metadata.
            unsigned nb = (shift + width + 7) / 8;
            std::uint8_t *d = c->data();
            std::uint64_t word = 0;
            for (unsigned i = 0; i < nb; ++i)
                word |= static_cast<std::uint64_t>(d[byte_idx + i])
                        << (8 * i);
            word = (word & ~(mask << shift)) | (bits << shift);
            for (unsigned i = 0; i < nb; ++i)
                d[byte_idx + i] =
                    static_cast<std::uint8_t>(word >> (8 * i));
            return;
        }
        if (byte_idx + 8 <= chunkMetaBytes_) {
            std::uint64_t word;
            std::memcpy(&word, c->data() + byte_idx, 8);
            word = (word & ~(mask << shift)) | (bits << shift);
            std::memcpy(c->data() + byte_idx, &word, 8);
            return;
        }
    }
    writePackedSlow(app_addr, bytes, bits);
}

void
ShadowMemory::writePackedSlow(Addr app_addr, unsigned bytes,
                              std::uint64_t bits)
{
    for (unsigned i = 0; i < bytes; ++i) {
        write(app_addr + i, static_cast<std::uint8_t>(
                                (bits >> (i * bitsPerByte_)) & valueMask_));
    }
}

bool
ShadowMemory::rangeAll(const AddrRange &range, std::uint8_t value) const
{
    return rangeFindNot(range, value) == kInvalidAddr;
}

Addr
ShadowMemory::rangeFindNot(const AddrRange &range, std::uint8_t value) const
{
    if (range.empty())
        return kInvalidAddr;
    // Stored metadata is always masked, so an out-of-range comparison
    // value matches nothing.
    if (value & ~valueMask_)
        return range.begin;
    const std::uint8_t pat = patternByte(value);
    const std::uint64_t pat64 = pat * 0x0101010101010101ULL;
    const unsigned gpb = 8 / bitsPerByte_; // metadata groups per byte

    Addr a = range.begin;
    while (a < range.end) {
        const Addr chunk_base = (a / kChunkAppBytes) * kChunkAppBytes;
        const Addr seg_end =
            std::min<Addr>(range.end, chunk_base + kChunkAppBytes);
        const Chunk *c = lookupChunk(a);
        if (!c) {
            // Unmapped space reads as 0 everywhere.
            if (value != 0)
                return a;
            a = seg_end;
            continue;
        }
        const std::uint8_t *d = c->data();
        const std::uint64_t bit0 = (a - chunk_base) * bitsPerByte_;
        const std::uint64_t bit1 = (seg_end - chunk_base) * bitsPerByte_;
        std::uint64_t b0 = bit0 >> 3;
        const std::uint64_t b1 = bit1 >> 3;
        const unsigned s0 = bit0 & 7, s1 = bit1 & 7;

        // First mismatching group in groups [g_lo, g_hi) of byte
        // byte_idx, as an app address (kInvalidAddr if none).
        auto scanByte = [&](std::uint64_t byte_idx, unsigned g_lo,
                            unsigned g_hi) -> Addr {
            for (unsigned g = g_lo; g < g_hi; ++g) {
                std::uint8_t got =
                    (d[byte_idx] >> (g * bitsPerByte_)) & valueMask_;
                if (got != value)
                    return chunk_base + byte_idx * gpb + g;
            }
            return kInvalidAddr;
        };

        if (b0 == b1) {
            // Segment confined to one backing byte.
            Addr hit =
                scanByte(b0, s0 / bitsPerByte_, s1 / bitsPerByte_);
            if (hit != kInvalidAddr)
                return hit;
            a = seg_end;
            continue;
        }
        if (s0) {
            Addr hit = scanByte(b0, s0 / bitsPerByte_, gpb);
            if (hit != kInvalidAddr)
                return hit;
            ++b0;
        }
        std::uint64_t b = b0;
        // Word-scan only in single-threaded mode: an 8-byte load reads
        // neighbour lines' metadata, racing their owning threads. The
        // byte loop below covers everything in concurrent mode.
        if (!concurrent_) {
            for (; b + 8 <= b1; b += 8) {
                std::uint64_t word;
                std::memcpy(&word, d + b, 8);
                if (word != pat64) {
                    for (unsigned k = 0; k < 8; ++k) {
                        if (d[b + k] != pat)
                            return scanByte(b + k, 0, gpb);
                    }
                }
            }
        }
        for (; b < b1; ++b) {
            if (d[b] != pat)
                return scanByte(b, 0, gpb);
        }
        if (s1) {
            Addr hit = scanByte(b1, 0, s1 / bitsPerByte_);
            if (hit != kInvalidAddr)
                return hit;
        }
        a = seg_end;
    }
    return kInvalidAddr;
}

void
ShadowMemory::fill(const AddrRange &range, std::uint8_t value)
{
    if (range.empty())
        return;
    const std::uint8_t v = value & valueMask_;
    const std::uint8_t pat = patternByte(v);

    Addr a = range.begin;
    while (a < range.end) {
        const Addr chunk_base = (a / kChunkAppBytes) * kChunkAppBytes;
        const Addr seg_end =
            std::min<Addr>(range.end, chunk_base + kChunkAppBytes);
        Chunk *c = lookupChunk(a);
        if (!c) {
            if (v == 0) { // zero-fill over untouched space: no-op
                a = seg_end;
                continue;
            }
            c = &ensureChunk(a);
        }
        std::uint8_t *d = c->data();
        const std::uint64_t bit0 = (a - chunk_base) * bitsPerByte_;
        const std::uint64_t bit1 = (seg_end - chunk_base) * bitsPerByte_;
        std::uint64_t b0 = bit0 >> 3;
        const std::uint64_t b1 = bit1 >> 3;
        const unsigned s0 = bit0 & 7, s1 = bit1 & 7;

        if (b0 == b1) {
            // Sub-byte segment: mask-merge bits [s0, s1).
            std::uint8_t m =
                static_cast<std::uint8_t>(((1u << (s1 - s0)) - 1) << s0);
            d[b0] = (d[b0] & ~m) | (pat & m);
            a = seg_end;
            continue;
        }
        if (s0) {
            std::uint8_t m = static_cast<std::uint8_t>(0xFFu << s0);
            d[b0] = (d[b0] & ~m) | (pat & m);
            ++b0;
        }
        if (b1 > b0)
            std::memset(d + b0, pat, b1 - b0);
        if (s1) {
            std::uint8_t m = static_cast<std::uint8_t>((1u << s1) - 1);
            d[b1] = (d[b1] & ~m) | (pat & m);
        }
        a = seg_end;
    }
}

std::uint64_t
shadowFingerprint(const ShadowMemory &shadow, Addr base,
                  std::uint64_t bytes)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (Addr a = base; a < base + bytes; ++a) {
        h ^= shadow.read(a);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace paralog
