#include "lifeguard/lockset.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace paralog {

LockSet::LockSet(std::uint32_t num_threads, std::uint32_t shadow_shards)
    : Lifeguard(num_threads, 2, shadow_shards), heldLocks_(num_threads)
{
    // Lockset id 0 is the empty set.
    locksets_.push_back(LockVec{});
    internMap_.emplace(LockVec{}, 0);
}

std::uint32_t
LockSet::internLockset(const LockVec &locks)
{
    auto it = internMap_.find(locks);
    if (it != internMap_.end())
        return it->second;
    std::uint32_t id = static_cast<std::uint32_t>(locksets_.size());
    locksets_.push_back(locks);
    internMap_.emplace(locks, id);
    return id;
}

const LockSet::LockVec &
LockSet::locksetById(std::uint32_t id) const
{
    PARALOG_ASSERT(id < locksets_.size(), "bad lockset id %u", id);
    return locksets_[id];
}

std::uint32_t
LockSet::intersect(std::uint32_t id, const LockVec &held)
{
    const LockVec &cur = locksetById(id);
    LockVec result;
    std::set_intersection(cur.begin(), cur.end(), held.begin(), held.end(),
                          std::back_inserter(result));
    if (result == cur)
        return id;
    return internLockset(result);
}

void
LockSet::access(const LgEvent &ev, LgContext &ctx, bool is_write)
{
    Addr g = granuleOf(ev.addr);

    // TSO: a versioned access decides on the snapshot state (what the
    // application actually observed, pre-overwrite). Read-side-writer
    // rule: if the conflicting store's handler has already applied its
    // newer metadata ('writerDone'), this late consumer must keep its
    // snapshot-based *decision* but suppress its metadata *write* —
    // escalating live state from a stale snapshot would clobber the
    // store handler's result. The pair is racy either way, and the
    // snapshot-based check reports it.
    VersionStore::Versioned ver;
    bool versioned = ctx.consumeVersioned(ev, ver);
    bool write_back = !(versioned && ver.writerDone);
    std::uint8_t st = versioned
                          ? static_cast<std::uint8_t>(
                                ctx.versionedByte(ver, g) & 0x3)
                          : static_cast<std::uint8_t>(
                                ctx.loadMeta(g, 1) & 0x3);
    const LockVec &held = heldLocks_[ev.tid];
    ctx.charge(3);

    // Fast path: shared state with a lockset that already contains only
    // locks we hold requires no metadata write.
    if (st == kShared || st == kSharedModified) {
        auto it = granules_.find(g);
        std::uint32_t ls = (it != granules_.end()) ? it->second.locksetId
                                                   : 0;
        std::uint32_t refined = intersect(ls, held);
        if (refined == ls && !(st == kShared && is_write)) {
            ++fastPathHits;
            if (locksetById(ls).empty() &&
                (st == kSharedModified || is_write)) {
                violations.report(Violation::Kind::kDataRace, ev.tid,
                                  ev.rid, ev.addr);
            }
            return;
        }
        // Slow path: refine the lockset / escalate the state under the
        // metadata lock (condition-2 violation handled with software
        // synchronization, section 5.3).
        ctx.atomicSlowPath();
        ++slowPathEntries;
        std::uint8_t new_state =
            (st == kSharedModified || is_write) ? kSharedModified : kShared;
        if (write_back) {
            granules_[g].locksetId = refined;
            ctx.storeMeta(g, 1, new_state);
        }
        if (locksetById(refined).empty() && new_state == kSharedModified) {
            violations.report(Violation::Kind::kDataRace, ev.tid, ev.rid,
                              ev.addr);
        }
        return;
    }

    // Virgin / exclusive transitions always take the slow path. The
    // race *decision* runs regardless of write_back — only the
    // metadata/side-table updates are suppressed for late consumers.
    ctx.atomicSlowPath();
    ++slowPathEntries;
    if (st == kVirgin) {
        if (write_back) {
            Granule &gr = granules_[g];
            gr.firstOwner = ev.tid;
            gr.locksetId = internLockset(held);
            ctx.storeMeta(g, 1, kExclusive);
        }
        return;
    }
    // kExclusive
    auto it = granules_.find(g);
    ThreadId first_owner =
        (it != granules_.end()) ? it->second.firstOwner : kInvalidThread;
    if (first_owner == ev.tid) {
        // Still the owning thread: refresh the candidate set.
        if (write_back && it != granules_.end())
            it->second.locksetId = internLockset(held);
        return;
    }
    std::uint32_t ls = (it != granules_.end()) ? it->second.locksetId : 0;
    std::uint32_t refined = intersect(ls, held);
    std::uint8_t new_state = is_write ? kSharedModified : kShared;
    if (write_back) {
        granules_[g].locksetId = refined;
        ctx.storeMeta(g, 1, new_state);
    }
    if (locksetById(refined).empty() && new_state == kSharedModified) {
        violations.report(Violation::Kind::kDataRace, ev.tid, ev.rid,
                          ev.addr);
    }
}

void
LockSet::handle(const LgEvent &ev, LgContext &ctx)
{
    switch (ev.type) {
      case LgEventType::kLoad:
        access(ev, ctx, false);
        break;

      case LgEventType::kStore:
        access(ev, ctx, true);
        break;

      case LgEventType::kLockAcquire: {
        LockVec &held = heldLocks_[ev.tid];
        held.insert(std::lower_bound(held.begin(), held.end(), ev.addr),
                    ev.addr);
        ctx.charge(4);
        break;
      }

      case LgEventType::kLockRelease: {
        LockVec &held = heldLocks_[ev.tid];
        auto it = std::lower_bound(held.begin(), held.end(), ev.addr);
        if (it != held.end() && *it == ev.addr)
            held.erase(it);
        ctx.charge(4);
        break;
      }

      case LgEventType::kMalloc:
      case LgEventType::kFree:
        // Recycled memory returns to virgin state.
        ctx.fillMeta(ev.range, kVirgin);
        for (Addr g = granuleOf(ev.range.begin);
             g < ev.range.end; g += kGranuleBytes) {
            granules_.erase(g);
        }
        break;

      case LgEventType::kProduceVersion: {
        // TSO: snapshot the pre-overwrite Eraser states for the
        // conflicting reader (section 5.5). LockSet keeps each
        // granule's state in the byte at granuleOf(addr), so the
        // snapshot must cover every granule base the store touches —
        // the store's own byte range misses the state byte for
        // interior stores, and the consumer would silently fall back
        // to post-overwrite live metadata. A granule-crossing store
        // (at most two granules for size <= 8) snapshots 16 bytes in
        // two packed reads; at 2 bits/byte that is 32 bits.
        // (The interned lockset side table is not versioned: it is
        // guarded by the atomic slow path, and the state byte alone
        // drives the transition taken.)
        Addr base = granuleOf(ev.addr);
        Addr last = granuleOf(ev.addr + (ev.size ? ev.size - 1u : 0u));
        std::uint64_t bits = ctx.loadMeta(base, kGranuleBytes);
        std::uint8_t span = kGranuleBytes;
        if (last != base) {
            bits |= ctx.loadMeta(base + kGranuleBytes, kGranuleBytes)
                    << (kGranuleBytes * shadow_.bitsPerByte());
            span = 2 * kGranuleBytes;
        }
        ctx.versions().produce(
            ev.version, VersionStore::Versioned{bits, base, span});
        ctx.charge(4);
        break;
      }

      default:
        ctx.charge(1);
        break;
    }
}

} // namespace paralog
