#include "lifeguard/memcheck.hpp"

namespace paralog {

void
MemCheck::handle(const LgEvent &ev, LgContext &ctx)
{
    switch (ev.type) {
      case LgEventType::kLoad: {
        // TSO snapshots are shifted to the load's own byte range (the
        // conflicting store may cover different bytes of the line).
        std::uint64_t bits;
        VersionStore::Versioned ver;
        if (ctx.consumeVersioned(ev, ver)) {
            bits = ctx.versionedPacked(ver, ev.addr, ev.size);
        } else {
            bits = ctx.loadMeta(ev.addr, ev.size);
            ctx.charge(3);
        }
        bool init = (bits & ones(ev.size)) == ones(ev.size);
        if (!init && checkedRange_.contains(ev.addr)) {
            violations.report(Violation::Kind::kUninitRead, ev.tid,
                              ev.rid, ev.addr);
        }
        regMeta(ev.tid, ev.dst) = init ? kInit : kUninit;
        break;
      }

      case LgEventType::kStore:
        // Storing any register value makes the destination defined to
        // the degree the register is defined.
        ctx.storeMeta(ev.addr, ev.size,
                      regMeta(ev.tid, ev.src) ? ones(ev.size) : 0);
        ctx.charge(3);
        break;

      case LgEventType::kMovRR:
        regMeta(ev.tid, ev.dst) = regMeta(ev.tid, ev.src);
        ctx.charge(2);
        break;

      case LgEventType::kMovImm:
        regMeta(ev.tid, ev.dst) = kInit;
        ctx.charge(2);
        break;

      case LgEventType::kAlu:
        // Defined iff both operands are defined.
        regMeta(ev.tid, ev.dst) = regMeta(ev.tid, ev.dst) &
                                  regMeta(ev.tid, ev.src);
        ctx.charge(3);
        break;

      case LgEventType::kMemToMem: {
        // Report every undefined source, not just the first: which
        // sources share a row depends on IT merge/flush timing, so
        // reporting a single representative would make the *set* of
        // reported addresses schedule-dependent.
        bool init = ctx.metaAllEqual(ev.srcs.data(), ev.nsrcs, kInit);
        if (!init) {
            for (unsigned i = 0; i < ev.nsrcs; ++i) {
                if (!ctx.metaAllEqual(&ev.srcs[i], 1, kInit) &&
                    checkedRange_.contains(ev.srcs[i].addr)) {
                    violations.report(Violation::Kind::kUninitRead,
                                      ev.tid, ev.rid, ev.srcs[i].addr);
                }
            }
        }
        ctx.storeMeta(ev.addr, ev.size, init ? ones(ev.size) : 0);
        ctx.charge(2);
        break;
      }

      case LgEventType::kMemSetConst:
        ctx.storeMeta(ev.addr, ev.size, ones(ev.size));
        ctx.charge(3);
        break;

      case LgEventType::kRegInheritMem: {
        // The deferred check of an IT-absorbed load runs here: the
        // register inherited from these bytes, so reading them while
        // undefined is the same uninit-read the unabsorbed kLoad path
        // reports (kMemToMem reports it too; leaving this path silent
        // made absorbed loads false negatives). Every undefined source
        // is reported: which sources share a row is a merge/flush-timing
        // artifact, so a single representative would make the distinct
        // set of reported addresses schedule-dependent.
        bool init = ctx.metaAllEqual(ev.srcs.data(), ev.nsrcs, kInit);
        if (!init) {
            for (unsigned i = 0; i < ev.nsrcs; ++i) {
                if (!ctx.metaAllEqual(&ev.srcs[i], 1, kInit) &&
                    checkedRange_.contains(ev.srcs[i].addr)) {
                    violations.report(Violation::Kind::kUninitRead,
                                      ev.tid, ev.rid, ev.srcs[i].addr);
                }
            }
        }
        regMeta(ev.tid, ev.dst) = init ? kInit : kUninit;
        ctx.charge(2);
        break;
      }

      case LgEventType::kRegInheritConst:
        regMeta(ev.tid, ev.dst) = kInit;
        ctx.charge(2);
        break;

      case LgEventType::kMalloc:
        // Freshly allocated memory is uninitialized: this is the
        // high-level conflict that forces IT flushes (section 4.1).
        ctx.fillMeta(ev.range, kUninit);
        break;

      case LgEventType::kFree:
        ctx.fillMeta(ev.range, kUninit);
        break;

      case LgEventType::kSyscallEnd:
        if (ev.syscall == SyscallKind::kRead)
            ctx.fillMeta(ev.range, kInit); // kernel defined the buffer
        ctx.charge(2);
        break;

      case LgEventType::kProduceVersion:
        ctx.produceSnapshot(ev);
        break;

      default:
        ctx.charge(1);
        break;
    }
}

} // namespace paralog
