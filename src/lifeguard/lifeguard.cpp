#include "lifeguard/lifeguard.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "lifeguard/addrcheck.hpp"
#include "lifeguard/lockset.hpp"
#include "lifeguard/memcheck.hpp"
#include "lifeguard/taintcheck.hpp"

namespace paralog {

std::size_t
ViolationLog::count(Violation::Kind kind) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const Violation &v : violations_) {
        if (v.kind == kind)
            ++n;
    }
    return n;
}

std::uint64_t
ViolationLog::setFingerprint() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::uint64_t> keys;
    keys.reserve(violations_.size());
    for (const Violation &v : violations_)
        keys.push_back((static_cast<std::uint64_t>(v.kind) << 56) ^
                       (static_cast<std::uint64_t>(v.tid) << 48) ^
                       static_cast<std::uint64_t>(v.addr));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::uint64_t h = 14695981039346656037ULL; // FNV-1a offset basis
    for (std::uint64_t key : keys) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (key >> (8 * byte)) & 0xFF;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

LgContext::LgContext(ShadowMemory &shadow, MetadataTlb &mtlb,
                     VersionStore &versions, MemorySystem *mem, CoreId core)
    : shadow_(shadow), mtlb_(mtlb), versions_(versions), mem_(mem),
      core_(core)
{
}

void
LgContext::beginEvent()
{
    instrs_ = 0;
    memCycles_ = 0;
}

Cycle
LgContext::metaCacheAccess(Addr meta_addr, unsigned bytes, bool is_write)
{
    Cycle latency = 0;
    if (metaOracle_) {
        latency = metaOracle_();
    } else if (mem_) {
        latency = mem_->access(core_, meta_addr, bytes, is_write,
                               AccessTag{}, false)
                      .latency;
    }
    if (metaTee_)
        metaTee_(latency);
    memCycles_ += latency;
    return latency;
}

void
LgContext::touchMeta(Addr app_addr, unsigned app_bytes, bool is_write)
{
    // Metadata address computation: M-TLB hit is ~1 handler instruction,
    // a miss pays the two-level table walk.
    instrs_ += mtlb_.lookupCost(app_addr);
    if (!mem_ && !metaOracle_ && !metaTee_)
        return;
    unsigned meta_bytes =
        std::max<unsigned>(1, (app_bytes * shadow_.bitsPerByte() + 7) / 8);
    metaCacheAccess(shadow_.metaAddr(app_addr), meta_bytes, is_write);
}

std::uint64_t
LgContext::loadMeta(Addr app_addr, unsigned bytes)
{
    touchMeta(app_addr, bytes, false);
    instrs_ += 1;
    return shadow_.readPacked(app_addr, bytes);
}

void
LgContext::storeMeta(Addr app_addr, unsigned bytes, std::uint64_t bits)
{
    touchMeta(app_addr, bytes, true);
    instrs_ += 1;
    shadow_.writePacked(app_addr, bytes, bits);
}

std::uint64_t
LgContext::loadMetaUnion(const MetaSrc *srcs, unsigned n)
{
    std::uint64_t bits = 0;
    Addr touched[kItMaxSources];
    unsigned ntouched = 0;
    for (unsigned i = 0; i < n; ++i) {
        Addr word = shadow_.metaAddr(srcs[i].addr) & ~7ULL;
        bool seen = false;
        for (unsigned j = 0; j < ntouched; ++j) {
            if (touched[j] == word)
                seen = true;
        }
        if (!seen) {
            touched[ntouched++] = word;
            touchMeta(srcs[i].addr, srcs[i].size, false);
        }
        instrs_ += 1;
        bits |= shadow_.readPacked(srcs[i].addr, srcs[i].size);
    }
    return bits;
}

bool
LgContext::metaAllEqual(const MetaSrc *srcs, unsigned n, std::uint8_t value)
{
    bool all = true;
    Addr touched[kItMaxSources];
    unsigned ntouched = 0;
    for (unsigned i = 0; i < n; ++i) {
        Addr word = shadow_.metaAddr(srcs[i].addr) & ~7ULL;
        bool seen = false;
        for (unsigned j = 0; j < ntouched; ++j) {
            if (touched[j] == word)
                seen = true;
        }
        if (!seen) {
            touched[ntouched++] = word;
            touchMeta(srcs[i].addr, srcs[i].size, false);
        }
        instrs_ += 1;
        AddrRange r{srcs[i].addr, srcs[i].addr + srcs[i].size};
        all = all && shadow_.rangeAll(r, value);
    }
    return all;
}

bool
LgContext::consumeVersioned(const LgEvent &ev, VersionStore::Versioned &out)
{
    if (!ev.consumesVersion || !versions_.available(ev.version))
        return false;
    out = versions_.consume(ev.version);
    // Version buffer read: cheaper than a metadata cache miss, dearer
    // than a register (matches the kProduceVersion handler charges).
    instrs_ += 4;
    return true;
}

std::uint8_t
LgContext::versionedByte(const VersionStore::Versioned &v, Addr addr)
{
    if (addr >= v.addr && addr < v.addr + v.size) {
        unsigned off = static_cast<unsigned>(addr - v.addr);
        unsigned shift = off * shadow_.bitsPerByte();
        std::uint64_t mask = (1ULL << shadow_.bitsPerByte()) - 1;
        return static_cast<std::uint8_t>((v.bits >> shift) & mask);
    }
    // Snapshot does not cover this byte: the conflicting store wrote a
    // different part of the cache line, so live metadata is current.
    return static_cast<std::uint8_t>(loadMeta(addr, 1));
}

std::uint64_t
LgContext::versionedPacked(const VersionStore::Versioned &v, Addr addr,
                           unsigned bytes)
{
    unsigned bpb = shadow_.bitsPerByte();
    if (addr >= v.addr && addr + bytes <= v.addr + v.size) {
        unsigned width = bytes * bpb;
        std::uint64_t mask =
            (width >= 64) ? ~0ULL : ((1ULL << width) - 1);
        return (v.bits >> ((addr - v.addr) * bpb)) & mask;
    }
    if (addr + bytes <= v.addr || addr >= v.addr + v.size)
        return loadMeta(addr, bytes);
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < bytes; ++i) {
        bits |= static_cast<std::uint64_t>(versionedByte(v, addr + i))
                << (i * bpb);
    }
    return bits;
}

void
LgContext::produceSnapshot(const LgEvent &ev)
{
    std::uint64_t bits = loadMeta(ev.addr, ev.size);
    versions_.produce(ev.version,
                      VersionStore::Versioned{bits, ev.addr, ev.size});
    charge(4);
}

void
LgContext::fillMeta(const AddrRange &range, std::uint8_t value)
{
    if (range.empty())
        return;
    instrs_ += 4;
    // One store (and one cache access) per 64-byte metadata line.
    Addr meta_begin = shadow_.metaAddr(range.begin);
    Addr meta_end = shadow_.metaAddr(range.end - 1) + 1;
    for (Addr m = meta_begin & ~63ULL; m < meta_end; m += 64) {
        instrs_ += 2;
        metaCacheAccess(m, 8, true);
    }
    shadow_.fill(range, value);
}

bool
LgContext::checkMetaAll(const AddrRange &range, std::uint8_t value)
{
    if (range.empty())
        return true;
    instrs_ += 3;
    Addr meta_begin = shadow_.metaAddr(range.begin);
    Addr meta_end = shadow_.metaAddr(range.end - 1) + 1;
    for (Addr m = meta_begin & ~63ULL; m < meta_end; m += 64) {
        instrs_ += 1;
        metaCacheAccess(m, 8, false);
    }
    return shadow_.rangeAll(range, value);
}

Lifeguard::Lifeguard(std::uint32_t num_threads,
                     std::uint32_t bits_per_byte,
                     std::uint32_t shadow_shards)
    : shadow_(bits_per_byte, shadow_shards), regMeta_(num_threads)
{
    for (auto &regs : regMeta_)
        regs.fill(0);
}

std::uint8_t &
Lifeguard::regMeta(ThreadId tid, RegId reg)
{
    PARALOG_ASSERT(tid < regMeta_.size() && reg < kNumRegs,
                   "bad register metadata index (%u, %u)", tid, reg);
    return regMeta_[tid][reg];
}

LifeguardPtr
makeLifeguard(LifeguardKind kind, std::uint32_t num_threads,
              std::uint32_t shadow_shards)
{
    switch (kind) {
      case LifeguardKind::kTaintCheck:
        return std::make_unique<TaintCheck>(num_threads, shadow_shards);
      case LifeguardKind::kAddrCheck:
        return std::make_unique<AddrCheck>(num_threads, shadow_shards);
      case LifeguardKind::kMemCheck:
        return std::make_unique<MemCheck>(num_threads, shadow_shards);
      case LifeguardKind::kLockSet:
        return std::make_unique<LockSet>(num_threads, shadow_shards);
    }
    panic("unknown lifeguard kind");
}

const char *
toString(LifeguardKind kind)
{
    switch (kind) {
      case LifeguardKind::kTaintCheck: return "TaintCheck";
      case LifeguardKind::kAddrCheck: return "AddrCheck";
      case LifeguardKind::kMemCheck: return "MemCheck";
      case LifeguardKind::kLockSet: return "LockSet";
    }
    return "?";
}

} // namespace paralog
