/**
 * @file
 * Temporary versioned-metadata store for TSO support (section 5.5).
 * Writers snapshot the pre-overwrite metadata under a version tag; the
 * reader's lifeguard waits for the version, consumes it once, and the
 * entry is discarded.
 *
 * Read-side-writer extension: for lifeguards that write metadata from
 * application *read* handlers (LockSet), the entry also records whether
 * the writer's store handler has already applied its own metadata
 * update ('writerDone'). A late-consuming reader uses that bit to keep
 * its snapshot-based decision while suppressing a metadata write that
 * would clobber the newer state (see README, "TSO versioning
 * protocol").
 */

#ifndef PARALOG_LIFEGUARD_VERSION_STORE_HPP
#define PARALOG_LIFEGUARD_VERSION_STORE_HPP

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace paralog {

class VersionStore
{
  public:
    struct Versioned
    {
        std::uint64_t bits = 0;
        Addr addr = 0;
        std::uint8_t size = 0;
        /// The producing writer's store handler already ran (its newer
        /// metadata is live); a read-side-writer consumer must not
        /// overwrite it with a snapshot-derived value.
        bool writerDone = false;
    };

    /**
     * Publish a snapshot. Returns false (and stores nothing) when the
     * tag is already live (duplicate produce, e.g. one version request
     * per cache line of a line-crossing conflict: keep-first wins) or
     * when the consumer already took a version with this tag or a
     * later one of the same thread (a second conflicting store can
     * re-produce a tag after its reader consumed it, and the
     * re-created entry would leak — consumers visit each record
     * exactly once, in rid order).
     */
    bool produce(const VersionTag &v, const Versioned &data);
    bool available(const VersionTag &v) const;

    /** Fetch and erase; panics if unavailable (enforcement bug). */
    Versioned consume(const VersionTag &v);

    /** Record that the writer's store handler has run. No-op if the
     *  consumer already took the entry (it ran first: natural order). */
    void markWriterDone(const VersionTag &v);

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.size();
    }

    /** Visit every live entry (watchdog diagnostics, leak checks). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[tag, data] : entries_)
            fn(tag, data);
    }

    StatSet stats{"versions"};

  private:
    struct TagHash
    {
        std::size_t
        operator()(const VersionTag &t) const
        {
            return std::hash<std::uint64_t>()(
                (static_cast<std::uint64_t>(t.tid) << 48) ^ t.rid);
        }
    };

    /// In concurrent monitoring mode the store is touched by every
    /// lifeguard thread (producers snapshot, consumers take); one lock
    /// covers both maps. The delivery protocol guarantees a consume is
    /// never attempted before its produce, so lock ordering is trivial
    /// and results stay schedule-independent.
    mutable std::mutex mutex_;
    std::unordered_map<VersionTag, Versioned, TagHash> entries_;
    /// Highest consumed rid per consumer thread. Consumption follows
    /// stream (rid) order, so any produce at or below the watermark can
    /// never be consumed again.
    std::unordered_map<ThreadId, RecordId> consumedWatermark_;
};

} // namespace paralog

#endif // PARALOG_LIFEGUARD_VERSION_STORE_HPP
