/**
 * @file
 * Temporary versioned-metadata store for TSO support (section 5.5).
 * Writers snapshot the pre-overwrite metadata under a version tag; the
 * reader's lifeguard waits for the version, consumes it once, and the
 * entry is discarded.
 */

#ifndef PARALOG_LIFEGUARD_VERSION_STORE_HPP
#define PARALOG_LIFEGUARD_VERSION_STORE_HPP

#include <cstdint>
#include <unordered_map>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace paralog {

class VersionStore
{
  public:
    struct Versioned
    {
        std::uint64_t bits = 0;
        Addr addr = 0;
        std::uint8_t size = 0;
    };

    void produce(const VersionTag &v, const Versioned &data);
    bool available(const VersionTag &v) const;

    /** Fetch and erase; panics if unavailable (enforcement bug). */
    Versioned consume(const VersionTag &v);

    std::size_t size() const { return entries_.size(); }

    StatSet stats{"versions"};

  private:
    struct TagHash
    {
        std::size_t
        operator()(const VersionTag &t) const
        {
            return std::hash<std::uint64_t>()(
                (static_cast<std::uint64_t>(t.tid) << 48) ^ t.rid);
        }
    };

    std::unordered_map<VersionTag, Versioned, TagHash> entries_;
};

} // namespace paralog

#endif // PARALOG_LIFEGUARD_VERSION_STORE_HPP
