#include "lifeguard/taintcheck.hpp"

namespace paralog {

bool
TaintCheck::isTainted(Addr addr, unsigned size) const
{
    for (unsigned i = 0; i < size; ++i) {
        if (shadow_.read(addr + i) != kUntainted)
            return true;
    }
    return false;
}

void
TaintCheck::handle(const LgEvent &ev, LgContext &ctx)
{
    switch (ev.type) {
      case LgEventType::kLoad: {
        // TSO: read the versioned (pre-overwrite) metadata, shifted to
        // the load's own byte range (version requests are cache-line
        // granular, so the snapshot may cover different bytes).
        std::uint64_t bits;
        VersionStore::Versioned ver;
        if (ctx.consumeVersioned(ev, ver)) {
            bits = ctx.versionedPacked(ver, ev.addr, ev.size);
        } else {
            bits = ctx.loadMeta(ev.addr, ev.size);
            ctx.charge(2);
        }
        std::uint8_t t = anyTainted(bits) ? kTainted : kUntainted;
        if (ev.racesSyscall) {
            // Concurrent with an unmonitored read(): conservatively
            // tainted (section 5.4).
            t = kTainted;
            ++conservativeTaints;
        }
        regMeta(ev.tid, ev.dst) = t;
        break;
      }

      case LgEventType::kStore:
        ctx.storeMeta(ev.addr, ev.size,
                      spread(regMeta(ev.tid, ev.src), ev.size));
        ctx.charge(2);
        break;

      case LgEventType::kMovRR:
        regMeta(ev.tid, ev.dst) = regMeta(ev.tid, ev.src);
        ctx.charge(2);
        break;

      case LgEventType::kMovImm:
        regMeta(ev.tid, ev.dst) = kUntainted;
        ctx.charge(2);
        break;

      case LgEventType::kAlu:
        regMeta(ev.tid, ev.dst) = regMeta(ev.tid, ev.dst) |
                                  regMeta(ev.tid, ev.src);
        ctx.charge(3);
        break;

      case LgEventType::kJumpReg:
        ctx.charge(3);
        if (regMeta(ev.tid, ev.src)) {
            violations.report(Violation::Kind::kTaintedJump, ev.tid,
                              ev.rid, ev.value);
        }
        break;

      case LgEventType::kJumpMem: {
        std::uint64_t bits = ctx.loadMetaUnion(ev.srcs.data(), ev.nsrcs);
        ctx.charge(2);
        if (anyTainted(bits)) {
            violations.report(Violation::Kind::kTaintedJump, ev.tid,
                              ev.rid, ev.srcs[0].addr);
        }
        break;
      }

      case LgEventType::kMemToMem: {
        // The single event IT synthesizes for a load/.../store chain
        // (Figure 3): metadata(addr) <- union of inherits-from metadata.
        std::uint64_t bits = ctx.loadMetaUnion(ev.srcs.data(), ev.nsrcs);
        std::uint8_t t =
            (anyTainted(bits) || ev.racesSyscall) ? kTainted : kUntainted;
        ctx.storeMeta(ev.addr, ev.size, spread(t, ev.size));
        ctx.charge(2);
        break;
      }

      case LgEventType::kMemSetConst:
        ctx.storeMeta(ev.addr, ev.size, 0);
        ctx.charge(3);
        break;

      case LgEventType::kRegInheritMem: {
        std::uint64_t bits = ctx.loadMetaUnion(ev.srcs.data(), ev.nsrcs);
        regMeta(ev.tid, ev.dst) = anyTainted(bits) ? kTainted : kUntainted;
        ctx.charge(2);
        break;
      }

      case LgEventType::kRegInheritConst:
        regMeta(ev.tid, ev.dst) = kUntainted;
        ctx.charge(2);
        break;

      case LgEventType::kMalloc:
      case LgEventType::kFree:
        // Fresh (or recycled) memory holds no tainted data.
        ctx.fillMeta(ev.range, kUntainted);
        break;

      case LgEventType::kSyscallEnd:
        if (ev.syscall == SyscallKind::kRead) {
            // Untrusted input: taint the kernel-filled buffer.
            ctx.fillMeta(ev.range, kTainted);
        }
        ctx.charge(2);
        break;

      case LgEventType::kSyscallBegin:
        if (ev.syscall == SyscallKind::kWrite &&
            !ctx.checkMetaAll(ev.range, kUntainted)) {
            violations.report(Violation::Kind::kTaintedOutput, ev.tid,
                              ev.rid, ev.range.begin);
        }
        ctx.charge(2);
        break;

      case LgEventType::kProduceVersion:
        // TSO: snapshot the current metadata before our pending store
        // overwrites it; the racing reader's lifeguard consumes it.
        ctx.produceSnapshot(ev);
        break;

      case LgEventType::kLockAcquire:
      case LgEventType::kLockRelease:
      case LgEventType::kBarrierPass:
      case LgEventType::kCaFlush:
      case LgEventType::kThreadSwitch:
      case LgEventType::kThreadDone:
        ctx.charge(1);
        break;

      case LgEventType::kNone:
        break;
    }
}

} // namespace paralog
