/**
 * @file
 * Two-level shadow (metadata) memory, as described in section 6: a
 * first-level chunk table indexed by the high application address bits,
 * with metadata chunks allocated lazily when the corresponding virtual
 * space is first used.
 *
 * The metadata-to-data ratio is configurable (1, 2, 4 or 8 bits per
 * application byte: AddrCheck uses 1, TaintCheck uses 2). Metadata bytes
 * live at a modelled virtual address (metaAddr) so lifeguard cache
 * behaviour can be simulated.
 *
 * The layout satisfies condition 3 of section 5.3 (no bit-manipulation
 * races): metadata bytes covering different 64-byte application lines
 * never share a byte, because 64 app bytes map to >= 8 metadata bytes.
 */

#ifndef PARALOG_LIFEGUARD_SHADOW_MEMORY_HPP
#define PARALOG_LIFEGUARD_SHADOW_MEMORY_HPP

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace paralog {

class ShadowMemory
{
  public:
    /// Application bytes covered by one metadata chunk.
    static constexpr std::uint64_t kChunkAppBytes = 1ULL << 20;

    /// Base of the modelled metadata virtual address region.
    static constexpr Addr kMetaBase = 1ULL << 40;

    explicit ShadowMemory(std::uint32_t bits_per_byte);

    std::uint32_t bitsPerByte() const { return bitsPerByte_; }

    /** Metadata value (bitsPerByte wide) for one application byte. */
    std::uint8_t read(Addr app_addr) const;
    void write(Addr app_addr, std::uint8_t value);

    /** Pack the metadata of @p bytes consecutive app bytes (<= 8). */
    std::uint64_t readPacked(Addr app_addr, unsigned bytes) const;
    void writePacked(Addr app_addr, unsigned bytes, std::uint64_t bits);

    /** True iff every byte in [range) has metadata == value. */
    bool rangeAll(const AddrRange &range, std::uint8_t value) const;

    /** First app byte in [range) with metadata != value, else
     *  kInvalidAddr. */
    Addr rangeFindNot(const AddrRange &range, std::uint8_t value) const;

    void fill(const AddrRange &range, std::uint8_t value);

    /** Modelled virtual address of the metadata for @p app_addr. */
    Addr
    metaAddr(Addr app_addr) const
    {
        return kMetaBase + (app_addr * bitsPerByte_) / 8;
    }

    std::size_t chunkCount() const { return chunks_.size(); }

  private:
    using Chunk = std::vector<std::uint8_t>;

    Chunk &chunkFor(Addr app_addr);
    const Chunk *chunkForConst(Addr app_addr) const;

    std::uint32_t bitsPerByte_;
    std::uint8_t valueMask_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Chunk>> chunks_;
};

} // namespace paralog

#endif // PARALOG_LIFEGUARD_SHADOW_MEMORY_HPP
