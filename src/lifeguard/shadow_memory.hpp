/**
 * @file
 * Two-level shadow (metadata) memory, as described in section 6: a
 * first-level chunk table indexed by the high application address bits,
 * with metadata chunks allocated lazily when the corresponding virtual
 * space is first used.
 *
 * The metadata-to-data ratio is configurable (1, 2, 4 or 8 bits per
 * application byte: AddrCheck uses 1, TaintCheck uses 2). Metadata bytes
 * live at a modelled virtual address (metaAddr) so lifeguard cache
 * behaviour can be simulated.
 *
 * The layout satisfies condition 3 of section 5.3 (no bit-manipulation
 * races): metadata bytes covering different 64-byte application lines
 * never share a byte, because 64 app bytes map to >= 8 metadata bytes.
 *
 * Hot-path design (this is the most-executed data structure in the
 * simulator):
 *  - the chunk table is consulted once per access/range, not once per
 *    byte, and the most recent chunk is cached so sequential access
 *    streams skip the hash lookup entirely;
 *  - packed accesses load/store one 64-bit word of metadata directly;
 *  - fill() writes whole bytes via std::memset (with masked edge bytes
 *    for sub-byte ratios) instead of per-byte read-modify-write;
 *  - rangeFindNot()/rangeAll() scan 64-bit words;
 *  - writes of metadata value 0 to an unmapped chunk are elided: chunks
 *    are zero-initialized, so fill(range, 0) over untouched address
 *    space allocates nothing.
 *
 * Sharding: the chunk table can be split into a power-of-two number of
 * shards, selected by the low bits of the chunk index (so consecutive
 * 1 MB chunks land in different shards). Each shard owns its chunk map
 * *and* its last-chunk cache, making shards fully self-contained: with
 * one shard per lifeguard thread, threads working disjoint address
 * ranges stop serializing on a single structure. The shard count is
 * invisible to results — chunk layout, metaAddr and all operation
 * semantics are unchanged, so any shard count produces bit-identical
 * metadata (and fingerprints) to the unsharded layout.
 *
 * Concurrent mode (setConcurrent): when lifeguard cores run on separate
 * host threads, chunk-map lookups/inserts take a per-shard mutex, the
 * shared last-chunk caches are bypassed, and the packed fast paths drop
 * from word-granular to backing-byte-granular memory operations. The
 * byte granularity is what makes unlocked metadata access sound: one
 * backing byte covers 8/bitsPerByte consecutive aligned application
 * bytes, which always lie inside a single 64-byte application line
 * (condition 3 of section 5.3) — so two threads touch the same backing
 * byte only when they access the same line, and same-line accesses are
 * ordered by the delivery protocol (dependence arcs / versioning),
 * with the progress table providing the release/acquire edge. The
 * 64-bit word paths would break exactly that: an unaligned word RMW
 * spans up to 64 application bytes of metadata, clobbering neighbour
 * lines owned by other threads.
 */

#ifndef PARALOG_LIFEGUARD_SHADOW_MEMORY_HPP
#define PARALOG_LIFEGUARD_SHADOW_MEMORY_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/flat_map.hpp"
#include "common/types.hpp"

namespace paralog {

class ShadowMemory;

/**
 * FNV-1a hash of the shadow metadata over [base, base + bytes): the
 * canonical "did two runs reach the same analysis conclusions?"
 * fingerprint, shared by the equivalence test suites and the trace
 * record/replay self-check.
 */
std::uint64_t shadowFingerprint(const ShadowMemory &shadow, Addr base,
                                std::uint64_t bytes);

class ShadowMemory
{
  public:
    /// Application bytes covered by one metadata chunk.
    static constexpr std::uint64_t kChunkAppBytes = 1ULL << 20;

    /// Base of the modelled metadata virtual address region.
    static constexpr Addr kMetaBase = 1ULL << 40;

    /// Largest accepted shard count (a shard is a map + a cache line of
    /// state; 256 covers any plausible lifeguard thread count).
    static constexpr std::uint32_t kMaxShards = 256;

    explicit ShadowMemory(std::uint32_t bits_per_byte,
                          std::uint32_t shards = 1);

    std::uint32_t bitsPerByte() const { return bitsPerByte_; }
    std::uint32_t shardCount() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

    /**
     * Switch between the single-threaded fast paths (default) and the
     * concurrent-safe paths (see the file comment). Results are
     * bit-identical either way; only the host-level memory operations
     * differ. Must be called while no other thread is accessing the
     * shadow.
     */
    void setConcurrent(bool on) { concurrent_ = on; }
    bool concurrent() const { return concurrent_; }

    /** Metadata value (bitsPerByte wide) for one application byte. */
    std::uint8_t read(Addr app_addr) const;
    void write(Addr app_addr, std::uint8_t value);

    /** Pack the metadata of @p bytes consecutive app bytes (<= 8). */
    std::uint64_t readPacked(Addr app_addr, unsigned bytes) const;
    void writePacked(Addr app_addr, unsigned bytes, std::uint64_t bits);

    /** True iff every byte in [range) has metadata == value. */
    bool rangeAll(const AddrRange &range, std::uint8_t value) const;

    /** First app byte in [range) with metadata != value, else
     *  kInvalidAddr. */
    Addr rangeFindNot(const AddrRange &range, std::uint8_t value) const;

    void fill(const AddrRange &range, std::uint8_t value);

    /** Modelled virtual address of the metadata for @p app_addr. */
    Addr
    metaAddr(Addr app_addr) const
    {
        return kMetaBase + (app_addr * bitsPerByte_) / 8;
    }

    std::size_t
    chunkCount() const
    {
        std::size_t n = 0;
        for (const Shard &s : shards_)
            n += s.chunks.size();
        return n;
    }

    /** Backing-store bytes actually allocated for metadata chunks
     *  (observes the zero-write elision: filling untouched space with
     *  value 0 allocates nothing). */
    std::uint64_t bytesAllocated() const
    {
        return chunkCount() * chunkMetaBytes_;
    }

  private:
    using Chunk = std::vector<std::uint8_t>;

    /**
     * One shard of the chunk table: its slice of the chunk map plus its
     * own last-chunk cache. Chunk storage is stable (vectors never
     * resize, unique_ptr targets never move), so a cached pointer stays
     * valid for the lifetime of the ShadowMemory. Caches are mutable so
     * const readers benefit from the sequential-access common case too.
     */
    struct Shard
    {
        FlatAddrMap<std::unique_ptr<Chunk>> chunks;
        mutable std::uint64_t cachedIdx = ~0ULL;
        mutable Chunk *cachedChunk = nullptr;
        /// Concurrent mode only: guards the chunk map (find/insert).
        /// Chunk *contents* are unlocked — backing-byte granularity
        /// plus protocol ordering make that race-free.
        mutable std::mutex mapMutex;
    };

    Shard &
    shardFor(std::uint64_t chunk_idx) const
    {
        return shards_[chunk_idx & shardMask_];
    }

    /** The mapped chunk covering @p app_addr, or nullptr. Refreshes the
     *  owning shard's last-chunk cache on a hash-table hit. */
    Chunk *lookupChunk(Addr app_addr) const;

    /** The chunk covering @p app_addr, allocating (and caching) it. */
    Chunk &ensureChunk(Addr app_addr);

    /** Replicate a metadata value across one backing byte. */
    std::uint8_t patternByte(std::uint8_t value) const;

    std::uint64_t readPackedSlow(Addr app_addr, unsigned bytes) const;
    void writePackedSlow(Addr app_addr, unsigned bytes, std::uint64_t bits);

    std::uint32_t bitsPerByte_;
    std::uint8_t valueMask_;
    std::uint64_t chunkMetaBytes_;
    std::uint64_t shardMask_;
    bool concurrent_ = false;
    /// deque, not vector: Shard owns a mutex and must never move.
    mutable std::deque<Shard> shards_;
};

} // namespace paralog

#endif // PARALOG_LIFEGUARD_SHADOW_MEMORY_HPP
