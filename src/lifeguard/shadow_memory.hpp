/**
 * @file
 * Two-level shadow (metadata) memory, as described in section 6: a
 * first-level chunk table indexed by the high application address bits,
 * with metadata chunks allocated lazily when the corresponding virtual
 * space is first used.
 *
 * The metadata-to-data ratio is configurable (1, 2, 4 or 8 bits per
 * application byte: AddrCheck uses 1, TaintCheck uses 2). Metadata bytes
 * live at a modelled virtual address (metaAddr) so lifeguard cache
 * behaviour can be simulated.
 *
 * The layout satisfies condition 3 of section 5.3 (no bit-manipulation
 * races): metadata bytes covering different 64-byte application lines
 * never share a byte, because 64 app bytes map to >= 8 metadata bytes.
 *
 * Hot-path design (this is the most-executed data structure in the
 * simulator):
 *  - the chunk table is consulted once per access/range, not once per
 *    byte, and the most recent chunk is cached so sequential access
 *    streams skip the hash lookup entirely;
 *  - packed accesses load/store one 64-bit word of metadata directly;
 *  - fill() writes whole bytes via std::memset (with masked edge bytes
 *    for sub-byte ratios) instead of per-byte read-modify-write;
 *  - rangeFindNot()/rangeAll() scan 64-bit words;
 *  - writes of metadata value 0 to an unmapped chunk are elided: chunks
 *    are zero-initialized, so fill(range, 0) over untouched address
 *    space allocates nothing.
 */

#ifndef PARALOG_LIFEGUARD_SHADOW_MEMORY_HPP
#define PARALOG_LIFEGUARD_SHADOW_MEMORY_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_map.hpp"
#include "common/types.hpp"

namespace paralog {

class ShadowMemory
{
  public:
    /// Application bytes covered by one metadata chunk.
    static constexpr std::uint64_t kChunkAppBytes = 1ULL << 20;

    /// Base of the modelled metadata virtual address region.
    static constexpr Addr kMetaBase = 1ULL << 40;

    explicit ShadowMemory(std::uint32_t bits_per_byte);

    std::uint32_t bitsPerByte() const { return bitsPerByte_; }

    /** Metadata value (bitsPerByte wide) for one application byte. */
    std::uint8_t read(Addr app_addr) const;
    void write(Addr app_addr, std::uint8_t value);

    /** Pack the metadata of @p bytes consecutive app bytes (<= 8). */
    std::uint64_t readPacked(Addr app_addr, unsigned bytes) const;
    void writePacked(Addr app_addr, unsigned bytes, std::uint64_t bits);

    /** True iff every byte in [range) has metadata == value. */
    bool rangeAll(const AddrRange &range, std::uint8_t value) const;

    /** First app byte in [range) with metadata != value, else
     *  kInvalidAddr. */
    Addr rangeFindNot(const AddrRange &range, std::uint8_t value) const;

    void fill(const AddrRange &range, std::uint8_t value);

    /** Modelled virtual address of the metadata for @p app_addr. */
    Addr
    metaAddr(Addr app_addr) const
    {
        return kMetaBase + (app_addr * bitsPerByte_) / 8;
    }

    std::size_t chunkCount() const { return chunks_.size(); }

    /** Backing-store bytes actually allocated for metadata chunks
     *  (observes the zero-write elision: filling untouched space with
     *  value 0 allocates nothing). */
    std::uint64_t bytesAllocated() const
    {
        return chunks_.size() * chunkMetaBytes_;
    }

  private:
    using Chunk = std::vector<std::uint8_t>;

    /** The mapped chunk covering @p app_addr, or nullptr. Refreshes the
     *  last-chunk cache on a hash-table hit. */
    Chunk *lookupChunk(Addr app_addr) const;

    /** The chunk covering @p app_addr, allocating (and caching) it. */
    Chunk &ensureChunk(Addr app_addr);

    /** Replicate a metadata value across one backing byte. */
    std::uint8_t patternByte(std::uint8_t value) const;

    std::uint64_t readPackedSlow(Addr app_addr, unsigned bytes) const;
    void writePackedSlow(Addr app_addr, unsigned bytes, std::uint64_t bits);

    std::uint32_t bitsPerByte_;
    std::uint8_t valueMask_;
    std::uint64_t chunkMetaBytes_;
    FlatAddrMap<std::unique_ptr<Chunk>> chunks_;

    /// Last-chunk cache: chunk storage is stable (vectors never resize,
    /// unique_ptr targets never move), so a cached pointer stays valid
    /// for the lifetime of the ShadowMemory. Mutable so const readers
    /// benefit from the sequential-access common case too.
    mutable std::uint64_t cachedIdx_ = ~0ULL;
    mutable Chunk *cachedChunk_ = nullptr;
};

} // namespace paralog

#endif // PARALOG_LIFEGUARD_SHADOW_MEMORY_HPP
