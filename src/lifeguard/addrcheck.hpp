/**
 * @file
 * ADDRCHECK lifeguard (Nethercote): verifies that every heap memory
 * access touches allocated memory. One metadata bit per application
 * byte. Only heap loads/stores and allocation high-level events are
 * captured (a narrow event mux), so the lifeguard is often idle waiting
 * for the application, as observed in Figure 7.
 *
 * Two checks of the same address are idempotent unless a malloc/free
 * intervened, so AddrCheck is the showcase for the Idempotent Filters,
 * invalidated by malloc/free ConflictAlerts. Reads and writes both map
 * to metadata *reads* (condition 2 of section 5.3 holds trivially); the
 * only ordering it needs is of high-level allocation events, provided
 * by the ConflictAlert barriers.
 */

#ifndef PARALOG_LIFEGUARD_ADDRCHECK_HPP
#define PARALOG_LIFEGUARD_ADDRCHECK_HPP

#include "lifeguard/lifeguard.hpp"

namespace paralog {

class AddrCheck : public Lifeguard
{
  public:
    static constexpr std::uint8_t kUnallocated = 0;
    static constexpr std::uint8_t kAllocated = 1;

    explicit AddrCheck(std::uint32_t num_threads,
                       std::uint32_t shadow_shards = 1)
        : Lifeguard(num_threads, 1, shadow_shards)
    {
    }

    const char *name() const override { return "AddrCheck"; }

    LifeguardPolicy
    policy() const override
    {
        LifeguardPolicy p;
        p.usesIt = false;
        p.usesIf = true;
        p.usesMtlb = true;
        p.wantsRegOps = false; // only memory accesses matter
        p.wantsJumps = false;
        p.heapOnly = true;
        p.ifFilterLoads = true;
        p.ifFilterStores = true;
        p.ifInvalidateOnLocalWrite = false; // stores don't change
                                            // allocation state
        p.ifInvalidateOnAlloc = true;
        p.caOnMalloc = true;
        p.caOnFree = true;
        p.caOnSyscall = false; // allocation state is syscall-oblivious
        p.metadataBitsPerByte = 1;
        return p;
    }

    void handle(const LgEvent &ev, LgContext &ctx) override;

    bool isAllocated(Addr addr) const
    {
        return shadow_.read(addr) == kAllocated;
    }

  private:
    void checkAccess(const LgEvent &ev, LgContext &ctx);
};

} // namespace paralog

#endif // PARALOG_LIFEGUARD_ADDRCHECK_HPP
