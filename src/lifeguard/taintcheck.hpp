/**
 * @file
 * TAINTCHECK lifeguard (Newsome & Song): dynamic information-flow
 * tracking to detect memory-overwrite security exploits. Maintains a
 * tainted state for every memory byte (2 metadata bits per application
 * byte, as in the paper's evaluation) and every register; untrusted
 * input (read() system calls) is tainted, propagation follows data
 * movement, and critical uses (indirect jumps, output syscalls) of
 * tainted data raise violations.
 *
 * Satisfies the section 5.3 conditions (reads map to metadata reads,
 * 1:1 access mapping), so no handler synchronization is needed beyond
 * the platform-enforced event order. Uses IT and the M-TLB.
 */

#ifndef PARALOG_LIFEGUARD_TAINTCHECK_HPP
#define PARALOG_LIFEGUARD_TAINTCHECK_HPP

#include "lifeguard/lifeguard.hpp"

namespace paralog {

class TaintCheck : public Lifeguard
{
  public:
    static constexpr std::uint8_t kUntainted = 0;
    static constexpr std::uint8_t kTainted = 1;

    explicit TaintCheck(std::uint32_t num_threads,
                        std::uint32_t shadow_shards = 1)
        : Lifeguard(num_threads, 2, shadow_shards)
    {
    }

    const char *name() const override { return "TaintCheck"; }

    LifeguardPolicy
    policy() const override
    {
        LifeguardPolicy p;
        p.usesIt = true;
        p.usesIf = false;
        p.usesMtlb = true;
        p.wantsRegOps = true;
        p.wantsJumps = true;
        p.heapOnly = false;
        p.caOnMalloc = true;
        p.caOnFree = true;
        p.caOnSyscall = true;
        p.itFlushOnAlloc = true;
        p.itFlushOnSyscall = true;
        p.metadataBitsPerByte = 2;
        return p;
    }

    void handle(const LgEvent &ev, LgContext &ctx) override;

    /** True iff any byte in [addr, addr+size) is tainted (untimed). */
    bool isTainted(Addr addr, unsigned size) const;

    bool regTainted(ThreadId tid, RegId reg) { return regMeta(tid, reg); }

    std::uint64_t conservativeTaints = 0; ///< range-table race fallbacks

  private:
    static bool anyTainted(std::uint64_t packed) { return packed != 0; }

    /** Replicate a register taint bit across @p bytes 2-bit fields. */
    static std::uint64_t
    spread(std::uint8_t taint, unsigned bytes)
    {
        if (!taint)
            return 0;
        std::uint64_t bits = 0;
        for (unsigned i = 0; i < bytes && i < 8; ++i)
            bits |= static_cast<std::uint64_t>(kTainted) << (2 * i);
        return bits;
    }
};

} // namespace paralog

#endif // PARALOG_LIFEGUARD_TAINTCHECK_HPP
