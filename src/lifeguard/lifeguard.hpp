/**
 * @file
 * The lifeguard API: software-defined event handlers over shared global
 * metadata, with a per-thread execution context that accounts handler
 * cost (instructions + metadata cache accesses) and mediates all shadow
 * memory access.
 *
 * Porting note (the paper's stated goal): a lifeguard written against
 * this API is oblivious to parallel monitoring — ordering, accelerator
 * conflicts and metadata atomicity are handled by the platform, provided
 * the lifeguard's policy honestly declares its properties (section 5.3
 * conditions). Lifeguards that write metadata on application reads
 * (LockSet) must use the locked slow path via LgContext::atomicSlowPath.
 */

#ifndef PARALOG_LIFEGUARD_LIFEGUARD_HPP
#define PARALOG_LIFEGUARD_LIFEGUARD_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "accel/accel_config.hpp"
#include "accel/lg_event.hpp" // LgEvent, MetaSrc
#include "accel/mtlb.hpp"
#include "lifeguard/shadow_memory.hpp"
#include "lifeguard/version_store.hpp"
#include "mem/memory_system.hpp"

namespace paralog {

/** A reported application bug / exploit. */
struct Violation
{
    enum class Kind : std::uint8_t
    {
        kTaintedJump,       ///< tainted data used as a jump target
        kTaintedOutput,     ///< tainted data written out of the process
        kUnallocatedAccess, ///< access to unallocated heap memory
        kUninitRead,        ///< read of uninitialized memory
        kDataRace,          ///< lockset violation
        kInvalidFree,       ///< free of a non-live block
    };

    Kind kind;
    ThreadId tid;
    RecordId rid;
    Addr addr;
};

/** Shared across all lifeguard threads; reports may arrive from any of
 *  them in concurrent monitoring mode, so the log carries its own lock.
 *  all() returns a reference for single-threaded readers — concurrent
 *  phases must only report/count, and inspect contents after joining. */
class ViolationLog
{
  public:
    void
    report(Violation::Kind kind, ThreadId tid, RecordId rid, Addr addr)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        violations_.push_back(Violation{kind, tid, rid, addr});
    }

    std::size_t
    count() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return violations_.size();
    }
    std::size_t count(Violation::Kind kind) const;

    /**
     * Order- and duplicate-insensitive hash of the set of distinct
     * (kind, tid, addr) triples reported. Report *counts* are a
     * delivery-schedule quantity — the Idempotent Filters absorb
     * repeated checks, and how many repeats they absorb depends on
     * stall-flush timing — but a first occurrence can never be
     * absorbed, so the distinct-violation set is invariant across
     * serial and host-parallel monitoring of the same run.
     */
    std::uint64_t setFingerprint() const;

    const std::vector<Violation> &all() const { return violations_; }
    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        violations_.clear();
    }

  private:
    mutable std::mutex mutex_;
    std::vector<Violation> violations_;
};

/**
 * Per-lifeguard-thread execution context: charges handler costs and
 * times metadata accesses through the lifeguard core's own cache
 * hierarchy (metadata addresses from ShadowMemory::metaAddr).
 */
class LgContext
{
  public:
    LgContext(ShadowMemory &shadow, MetadataTlb &mtlb, VersionStore &versions,
              MemorySystem *mem, CoreId core);

    /** Reset per-event accounting. */
    void beginEvent();

    std::uint64_t instrs() const { return instrs_; }
    Cycle memCycles() const { return memCycles_; }

    /** Charge @p n handler instructions. */
    void charge(std::uint32_t n) { instrs_ += n; }

    /** Metadata read/write for [app_addr, app_addr + bytes), including
     *  M-TLB address computation and metadata cache access costs. */
    std::uint64_t loadMeta(Addr app_addr, unsigned bytes);
    void storeMeta(Addr app_addr, unsigned bytes, std::uint64_t bits);

    /**
     * Read the metadata of several inherits-from ranges (IT-synthesized
     * events), returning the bitwise OR (resp. detecting all-ones via
     * allOnes) of the packed values. Sources whose metadata falls into
     * an already-touched metadata word are coalesced: the handler pays
     * one address computation and one cache access per distinct word,
     * matching how a hand-tuned handler reads neighbouring metadata.
     */
    std::uint64_t loadMetaUnion(const MetaSrc *srcs, unsigned n);

    /** True iff every byte of every source has metadata == value. */
    bool metaAllEqual(const MetaSrc *srcs, unsigned n, std::uint8_t value);

    /** Range fill / check with line-granular cost model. */
    void fillMeta(const AddrRange &range, std::uint8_t value);
    bool checkMetaAll(const AddrRange &range, std::uint8_t value);

    /**
     * Locked slow path for lifeguards violating condition 2 of section
     * 5.3 (metadata writes in read handlers): charges the cost of an
     * atomic bus-locking instruction.
     */
    void atomicSlowPath() { memCycles_ += kAtomicCost; ++slowPaths_; }

    /**
     * TSO consume helper: when @p ev carries a consume-version
     * annotation whose snapshot is live, take it (charging the version
     * buffer access) and return true. The order-enforcing component
     * guarantees availability at delivery time, so a false return means
     * the event simply was not versioned.
     */
    bool consumeVersioned(const LgEvent &ev, VersionStore::Versioned &out);

    /**
     * The snapshot byte for @p addr, or the live metadata when the
     * snapshot does not cover it (version requests are cache-line
     * granular: the conflicting store may cover different bytes than
     * the reader's access).
     */
    std::uint8_t versionedByte(const VersionStore::Versioned &v, Addr addr);

    /** Packed variant of versionedByte for [addr, addr + bytes). */
    std::uint64_t versionedPacked(const VersionStore::Versioned &v,
                                  Addr addr, unsigned bytes);

    /** Standard kProduceVersion handler body: snapshot the event's
     *  byte range and publish it under its tag, charging the metadata
     *  read plus the version-buffer write. Lifeguards whose metadata
     *  geometry differs from the store's byte range (LockSet's granule
     *  states) implement their own snapshot instead. */
    void produceSnapshot(const LgEvent &ev);

    static constexpr Cycle kAtomicCost = 130;

    ShadowMemory &shadow() { return shadow_; }
    VersionStore &versions() { return versions_; }
    std::uint64_t slowPaths() const { return slowPaths_; }

    /**
     * Record/replay seam for metadata cache timing. Metadata accesses
     * share the L2 with the application cores, so their latencies
     * depend on application cache interference — the one consumer-side
     * quantity replay cannot regenerate without the application. The
     * tee observes every access latency while recording; the oracle
     * *supplies* them during replay (the memory system, if any, is
     * bypassed).
     */
    void setMetaLatencyTee(std::function<void(Cycle)> tee)
    {
        metaTee_ = std::move(tee);
    }
    void setMetaLatencyOracle(std::function<Cycle()> oracle)
    {
        metaOracle_ = std::move(oracle);
    }

  private:
    void touchMeta(Addr app_addr, unsigned app_bytes, bool is_write);

    /** The single funnel for metadata cache accesses: real memory
     *  system, replay oracle, or free (untimed unit tests). */
    Cycle metaCacheAccess(Addr meta_addr, unsigned bytes, bool is_write);

    ShadowMemory &shadow_;
    MetadataTlb &mtlb_;
    VersionStore &versions_;
    MemorySystem *mem_; ///< may be null (untimed unit tests, replay)
    CoreId core_;
    std::function<void(Cycle)> metaTee_;
    std::function<Cycle()> metaOracle_;
    std::uint64_t instrs_ = 0;
    Cycle memCycles_ = 0;
    std::uint64_t slowPaths_ = 0;
};

/**
 * Base class of all lifeguards. One instance is shared by all lifeguard
 * threads (the global metadata of Figure 2); per-application-thread
 * register metadata is indexed by the event's thread id.
 */
class Lifeguard
{
  public:
    virtual ~Lifeguard() = default;

    virtual const char *name() const = 0;

    /** Accelerator/capture/CA policy (fixed at initialization time). */
    virtual LifeguardPolicy policy() const = 0;

    /** Process one delivered event, charging costs through @p ctx. */
    virtual void handle(const LgEvent &ev, LgContext &ctx) = 0;

    ShadowMemory &shadow() { return shadow_; }
    const ShadowMemory &shadow() const { return shadow_; }
    ViolationLog violations;

  protected:
    Lifeguard(std::uint32_t num_threads, std::uint32_t bits_per_byte,
              std::uint32_t shadow_shards = 1);

    /** Per-thread, per-register metadata (one byte per register). */
    std::uint8_t &regMeta(ThreadId tid, RegId reg);

    ShadowMemory shadow_;
    std::vector<std::array<std::uint8_t, kNumRegs>> regMeta_;
};

using LifeguardPtr = std::unique_ptr<Lifeguard>;

/** Factory used by the platform and benches. */
enum class LifeguardKind
{
    kTaintCheck,
    kAddrCheck,
    kMemCheck,
    kLockSet,
};

LifeguardPtr makeLifeguard(LifeguardKind kind, std::uint32_t num_threads,
                           std::uint32_t shadow_shards = 1);
const char *toString(LifeguardKind kind);

} // namespace paralog

#endif // PARALOG_LIFEGUARD_LIFEGUARD_HPP
