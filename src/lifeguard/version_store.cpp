#include "lifeguard/version_store.hpp"

#include "common/logging.hpp"

namespace paralog {

bool
VersionStore::produce(const VersionTag &v, const Versioned &data)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto wm = consumedWatermark_.find(v.tid);
    if (wm != consumedWatermark_.end() && v.rid <= wm->second) {
        stats.counter("produced_stale").inc();
        return false;
    }
    // Keep-first on duplicate produce: the earliest snapshot is the
    // one closest to the pre-overwrite state, and counting a second
    // one would leave produced > consumed (the consumer takes each
    // tag exactly once).
    if (!entries_.emplace(v, data).second) {
        stats.counter("produced_duplicate").inc();
        return false;
    }
    stats.counter("produced").inc();
    return true;
}

bool
VersionStore::available(const VersionTag &v) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(v) > 0;
}

VersionStore::Versioned
VersionStore::consume(const VersionTag &v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(v);
    PARALOG_ASSERT(it != entries_.end(),
                   "consuming unavailable version (%u, %llu)", v.tid,
                   static_cast<unsigned long long>(v.rid));
    Versioned data = it->second;
    entries_.erase(it);
    RecordId &wm = consumedWatermark_[v.tid];
    if (v.rid > wm)
        wm = v.rid;
    stats.counter("consumed").inc();
    return data;
}

void
VersionStore::markWriterDone(const VersionTag &v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(v);
    if (it == entries_.end())
        return; // consumer ran first: handler order already matches
    it->second.writerDone = true;
    stats.counter("writer_first").inc();
}

} // namespace paralog
