#include "lifeguard/version_store.hpp"

#include "common/logging.hpp"

namespace paralog {

void
VersionStore::produce(const VersionTag &v, const Versioned &data)
{
    entries_[v] = data;
    stats.counter("produced").inc();
}

bool
VersionStore::available(const VersionTag &v) const
{
    return entries_.count(v) > 0;
}

VersionStore::Versioned
VersionStore::consume(const VersionTag &v)
{
    auto it = entries_.find(v);
    PARALOG_ASSERT(it != entries_.end(),
                   "consuming unavailable version (%u, %llu)", v.tid,
                   static_cast<unsigned long long>(v.rid));
    Versioned data = it->second;
    entries_.erase(it);
    stats.counter("consumed").inc();
    return data;
}

} // namespace paralog
