#include "sim/config.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/logging.hpp"

namespace paralog {

SimConfig
SimConfig::forAppThreads(std::uint32_t app_threads)
{
    SimConfig cfg;
    cfg.appThreads = app_threads;

    cfg.l1i = CacheParams{64 * 1024, 64, 4, 1};
    cfg.l1d = CacheParams{64 * 1024, 64, 4, 2};

    // Table 1: shared L2 of 2/4/8 MB as the core count grows (4/8/16
    // cores); 8-way, 6-cycle access.
    std::uint32_t cores = 2 * app_threads;
    std::uint64_t l2_size;
    if (cores <= 4)
        l2_size = 2ULL * 1024 * 1024;
    else if (cores <= 8)
        l2_size = 4ULL * 1024 * 1024;
    else
        l2_size = 8ULL * 1024 * 1024;
    cfg.l2 = CacheParams{l2_size, 64, 8, 6};
    return cfg;
}

std::uint32_t
SimConfig::totalCores() const
{
    switch (mode) {
      case MonitorMode::kNoMonitoring:
        return appThreads;
      case MonitorMode::kTimesliced:
        return 2;
      case MonitorMode::kParallel:
        return 2 * appThreads;
    }
    panic("unreachable monitor mode");
}

std::uint32_t
SimConfig::effectiveShadowShards(std::uint32_t lifeguard_cores) const
{
    if (shadowShards != 0)
        return shadowShards;
    return std::bit_ceil(std::max(lifeguard_cores, 1u));
}

std::string
SimConfig::describe() const
{
    std::ostringstream os;
    os << "cores: " << totalCores() << " (mode " << toString(mode)
       << ", " << appThreads << " app threads), in-order scalar, 1 GHz\n"
       << "L1-D: " << l1d.sizeBytes / 1024 << "KB, " << l1d.lineBytes
       << "B line, " << l1d.assoc << "-way, " << l1d.hitLatency
       << "-cycle, LRU\n"
       << "L2:   " << l2.sizeBytes / (1024 * 1024) << "MB, " << l2.lineBytes
       << "B line, " << l2.assoc << "-way, " << l2.hitLatency
       << "-cycle, shared inclusive\n"
       << "Memory: " << memLatency << "-cycle latency\n"
       << "Log buffer: " << logBufferBytes / 1024
       << "KB (1B per compressed record)\n"
       << "Memory model: " << toString(memoryModel)
       << ", dependence tracking: " << toString(depTracking) << "\n"
       << "Accelerators: IT=" << accel.inheritanceTracking
       << " IF=" << accel.idempotentFilter << " M-TLB=" << accel.metadataTlb
       << "\n"
       << "Shadow shards: ";
    if (shadowShards == 0)
        os << "auto (per lifeguard core)\n";
    else
        os << shadowShards << "\n";
    return os.str();
}

const char *
toString(MemoryModel m)
{
    switch (m) {
      case MemoryModel::kSC:
        return "SC";
      case MemoryModel::kTSO:
        return "TSO";
    }
    return "?";
}

const char *
toString(DepTracking d)
{
    switch (d) {
      case DepTracking::kPerBlock:
        return "per-block (aggressive)";
      case DepTracking::kPerCore:
        return "per-core (limited)";
    }
    return "?";
}

const char *
toString(MonitorMode m)
{
    switch (m) {
      case MonitorMode::kNoMonitoring:
        return "no-monitoring";
      case MonitorMode::kTimesliced:
        return "timesliced";
      case MonitorMode::kParallel:
        return "parallel";
    }
    return "?";
}

} // namespace paralog
