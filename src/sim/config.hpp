/**
 * @file
 * Central simulation configuration. Defaults model Table 1 of the paper:
 * in-order 1 GHz scalar cores, private 64 KB L1s, shared inclusive L2
 * (2/4/8 MB for 4/8/16 cores), 90-cycle main memory, 64 KB log buffer at
 * 1 byte per compressed record.
 */

#ifndef PARALOG_SIM_CONFIG_HPP
#define PARALOG_SIM_CONFIG_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace paralog {

/** Memory consistency model of the simulated application cores. */
enum class MemoryModel
{
    kSC,  ///< Sequential Consistency
    kTSO, ///< Total Store Ordering (per-core store buffers)
};

/**
 * How dependence timestamps are produced at the application side
 * (paper section 5.1 and Figure 8).
 */
enum class DepTracking
{
    /// FDR-style: per-L1-cache-block (tid, rid) tags — "aggressive
    /// dependence reduction".
    kPerBlock,
    /// Cheaper variant: the producing core's *current* retire counter is
    /// sent instead — "limited reduction", conservative arcs.
    kPerCore,
};

/** Monitoring arrangement (Figure 6). */
enum class MonitorMode
{
    kNoMonitoring, ///< Application alone, no lifeguard.
    kTimesliced,   ///< All app threads timesliced on one core; one
                   ///< sequential lifeguard core.
    kParallel,     ///< ParaLog: one lifeguard thread per app thread.
};

/** Geometry/latency of one cache level. */
struct CacheParams
{
    std::uint64_t sizeBytes = 64 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t assoc = 4;
    Cycle hitLatency = 2;
};

/** Hardware accelerator enables and sizing (paper sections 2 and 4). */
struct AccelParams
{
    bool inheritanceTracking = true; ///< IT
    bool idempotentFilter = true;    ///< IF
    bool metadataTlb = true;         ///< M-TLB

    std::uint32_t ifEntries = 64;   ///< IF cache entries (LRU)
    std::uint32_t mtlbEntries = 64; ///< M-TLB entries (LRU)

    /// Delayed-advertising force-flush threshold: accelerator entries
    /// whose record ID lags the last processed record by more than this
    /// are flushed to refresh the advertised progress (section 4.2).
    /// Stale IT rows (registers loaded once and parked) would otherwise
    /// pin the published progress and stall every remote arc.
    std::uint64_t advertiseThreshold = 64;
};

/** Top-level simulation configuration. */
struct SimConfig
{
    /// Number of application threads (1, 2, 4, or 8 in the paper).
    std::uint32_t appThreads = 1;

    MonitorMode mode = MonitorMode::kParallel;
    MemoryModel memoryModel = MemoryModel::kSC;
    DepTracking depTracking = DepTracking::kPerBlock;

    /// Latency of a two-source ALU operation. The evaluated benchmarks
    /// are floating-point codes; on an in-order scalar core FP add/mul
    /// latency dominates the compute kernels.
    Cycle aluLatency = 3;

    CacheParams l1i; ///< 64 KB, 4-way, 1 cycle (unused by the trace model)
    CacheParams l1d; ///< 64 KB, 4-way, 2 cycles
    CacheParams l2;  ///< sized by cores, 8-way, 6 cycles
    Cycle memLatency = 90;

    /// Log buffer capacity in bytes, assuming ~1 B per compressed record.
    std::uint64_t logBufferBytes = 64 * 1024;

    AccelParams accel;

    /// Stall the application at system calls until its lifeguard drains
    /// the log (damage containment, paper section 3).
    bool stallAppAtSyscalls = true;

    /// Issue ConflictAlert broadcasts from the malloc/free wrapper
    /// library and around system calls (section 5.4). Disabling this is
    /// *unsound* with accelerators; a test demonstrates the corruption.
    bool conflictAlerts = true;

    /// TSO store buffer depth (entries) and drain delay (cycles/store).
    std::uint32_t storeBufferEntries = 8;
    Cycle storeDrainDelay = 6;

    /// Timeslicing quantum (retired instructions) and context-switch cost.
    std::uint64_t timesliceQuantum = 10000;
    Cycle contextSwitchCost = 1000;

    /// Cycles a timesliced thread spins on a held lock / unreleased
    /// barrier before the scheduler preempts it. SPLASH-2 style spin
    /// synchronization burns most of a quantum when the holder is not
    /// running, which is why the paper's TIMESLICED bars grow with the
    /// thread count.
    Cycle timesliceSpinOnBlock = 4000;

    /// Cycles between retries when a core is blocked on coarse events
    /// (log full/empty). Models periodic re-checking.
    Cycle retryInterval = 16;

    /// Cycles between progress-table re-reads while stalled on a
    /// dependence arc; the progress entries live in cache lines, so the
    /// re-check is cheap and fine-grained (Figure 4(b)).
    Cycle depRetryInterval = 4;

    /// Dependence-stall retries before the stall-flush rule of section
    /// 4.2 kicks in. Flushing immediately would forfeit accelerator
    /// state on every brief stall; the flush only matters for breaking
    /// wait cycles, which a short delay preserves.
    std::uint32_t stallFlushAfterRetries = 8;

    /// Max records one LifeguardCore::step drains through the batched
    /// delivery fast path (OrderEnforcer::tryDeliverBatch). Purely a
    /// host wall-clock knob: simulated timing and results are identical
    /// for any value >= 1 (the batch never spans a stall, and per-record
    /// costs accumulate exactly as single-pop delivery would).
    std::uint32_t deliverBatchMax = 16;

    /// Shadow-memory shard count (power of two). 0 = auto: one shard
    /// per lifeguard core, rounded up to a power of two (so the
    /// timesliced baseline's single lifeguard core gets one shard and a
    /// k-thread parallel run gets ceil-pow2(k)). Sharding only changes
    /// the chunk-table layout — simulated results are bit-identical for
    /// any value.
    std::uint32_t shadowShards = 0;

    /// Deterministic seed for workloads.
    std::uint64_t seed = 1;

    /**
     * Build the paper's configuration for the given number of application
     * threads: 2k cores (k app + k lifeguard), L2 sized 2/4/8 MB for
     * 4/8/16 cores.
     */
    static SimConfig forAppThreads(std::uint32_t app_threads);

    /** Total simulated cores for the configured mode. */
    std::uint32_t totalCores() const;

    /** Resolve the `shadowShards` knob for a platform running
     *  @p lifeguard_cores lifeguard cores (0 = auto). */
    std::uint32_t effectiveShadowShards(std::uint32_t lifeguard_cores) const;

    /** Human-readable Table-1-style description. */
    std::string describe() const;
};

const char *toString(MemoryModel m);
const char *toString(DepTracking d);
const char *toString(MonitorMode m);

} // namespace paralog

#endif // PARALOG_SIM_CONFIG_HPP
