/**
 * @file
 * The micro-ISA executed by simulated application threads.
 *
 * Workloads are instruction *generators* (see app/program.hpp): they emit
 * one instruction at a time and may inspect register values produced by
 * earlier instructions (enabling pointer-chasing workloads). High-level
 * operations (malloc/free/lock/syscall) are single generator-visible
 * instructions that the interpreter expands into micro-op sequences,
 * mirroring how a wrapper library wraps libc calls in LBA (section 5.4).
 */

#ifndef PARALOG_ISA_INST_HPP
#define PARALOG_ISA_INST_HPP

#include <cstdint>

#include "common/types.hpp"

namespace paralog {

enum class Op : std::uint8_t
{
    // Program-visible operations.
    kNop,
    kLoad,    ///< dst <- mem[addr]           (size bytes)
    kStore,   ///< mem[addr] <- src           (size bytes)
    kMovRR,   ///< dst <- src
    kMovImm,  ///< dst <- imm                 (untaints dst)
    kAlu,     ///< dst <- dst op src          (metadata union)
    kAluImm,  ///< dst <- dst op imm          (metadata unchanged)
    kJumpReg, ///< indirect jump through src  (TaintCheck critical use)
    kMalloc,  ///< dst <- malloc(imm)
    kFree,    ///< free(addr or reg src if addr==0)
    kLock,    ///< acquire lock at addr
    kUnlock,  ///< release lock at addr
    kBarrier, ///< phase barrier at addr, imm = participant count
    kSyscallRead,  ///< read(addr, size): kernel fills buffer (untrusted)
    kSyscallWrite, ///< write(addr, size): kernel reads buffer
    kDone,    ///< thread exit

    // Internal micro-ops produced by interpreter expansion only.
    kMallocCore, ///< run the allocator, bind pendingAlloc, set dst
    kFreeCore,   ///< look up block, bind pendingFree
    kHeaderLoad, ///< allocator metadata load (real coherence traffic)
    kHeaderStore,///< allocator metadata store
    kHighLevel,  ///< emit a high-level event record (+ optional CA)
    kDrainWait,  ///< damage containment: wait for lifeguard to drain log
    kKernelCopy, ///< unmonitored kernel write into a user buffer
};

/** True for micro-ops that programs must not emit directly. */
inline constexpr bool
isInternalOp(Op op)
{
    return op >= Op::kMallocCore;
}

/** Sentinel: absolute addressing (no base register). */
inline constexpr RegId kNoReg = 0xff;

struct Inst
{
    Op op = Op::kNop;
    RegId dst = 0;
    RegId src = 0;
    Addr addr = 0;          ///< absolute address or offset from addrReg
    RegId addrReg = kNoReg; ///< base register for indirect addressing
    std::uint32_t size = 0;
    std::uint64_t imm = 0;

    // Internal fields used by expanded micro-ops.
    AddrRange range{};
    std::uint8_t hlKind = 0; ///< HighLevelKind for kHighLevel
    bool ca = false;         ///< broadcast a ConflictAlert with the event

    static Inst
    load(RegId dst, Addr addr, std::uint32_t size = 8)
    {
        Inst i;
        i.op = Op::kLoad;
        i.dst = dst;
        i.addr = addr;
        i.size = size;
        return i;
    }

    static Inst
    store(Addr addr, RegId src, std::uint32_t size = 8)
    {
        Inst i;
        i.op = Op::kStore;
        i.src = src;
        i.addr = addr;
        i.size = size;
        return i;
    }

    /** dst <- mem[regs[base] + off] */
    static Inst
    loadInd(RegId dst, RegId base, std::uint64_t off,
            std::uint32_t size = 8)
    {
        Inst i;
        i.op = Op::kLoad;
        i.dst = dst;
        i.addr = off;
        i.addrReg = base;
        i.size = size;
        return i;
    }

    /** mem[regs[base] + off] <- src */
    static Inst
    storeInd(RegId base, std::uint64_t off, RegId src,
             std::uint32_t size = 8)
    {
        Inst i;
        i.op = Op::kStore;
        i.src = src;
        i.addr = off;
        i.addrReg = base;
        i.size = size;
        return i;
    }

    static Inst
    movRR(RegId dst, RegId src)
    {
        Inst i;
        i.op = Op::kMovRR;
        i.dst = dst;
        i.src = src;
        return i;
    }

    static Inst
    movImm(RegId dst, std::uint64_t imm)
    {
        Inst i;
        i.op = Op::kMovImm;
        i.dst = dst;
        i.imm = imm;
        return i;
    }

    static Inst
    alu(RegId dst, RegId src)
    {
        Inst i;
        i.op = Op::kAlu;
        i.dst = dst;
        i.src = src;
        return i;
    }

    static Inst
    aluImm(RegId dst, std::uint64_t imm)
    {
        Inst i;
        i.op = Op::kAluImm;
        i.dst = dst;
        i.imm = imm;
        return i;
    }

    static Inst
    jumpReg(RegId src)
    {
        Inst i;
        i.op = Op::kJumpReg;
        i.src = src;
        return i;
    }

    static Inst
    malloc(RegId dst, std::uint64_t bytes)
    {
        Inst i;
        i.op = Op::kMalloc;
        i.dst = dst;
        i.imm = bytes;
        return i;
    }

    static Inst
    freeReg(RegId src)
    {
        Inst i;
        i.op = Op::kFree;
        i.src = src;
        return i;
    }

    static Inst
    freeAddr(Addr addr)
    {
        Inst i;
        i.op = Op::kFree;
        i.addr = addr;
        i.src = 0xff; // sentinel: use addr field
        return i;
    }

    static Inst
    lock(Addr addr)
    {
        Inst i;
        i.op = Op::kLock;
        i.addr = addr;
        return i;
    }

    static Inst
    unlock(Addr addr)
    {
        Inst i;
        i.op = Op::kUnlock;
        i.addr = addr;
        return i;
    }

    static Inst
    barrier(Addr addr, std::uint32_t participants)
    {
        Inst i;
        i.op = Op::kBarrier;
        i.addr = addr;
        i.imm = participants;
        return i;
    }

    static Inst
    syscallRead(Addr buf, std::uint32_t len)
    {
        Inst i;
        i.op = Op::kSyscallRead;
        i.addr = buf;
        i.size = len;
        return i;
    }

    static Inst
    syscallWrite(Addr buf, std::uint32_t len)
    {
        Inst i;
        i.op = Op::kSyscallWrite;
        i.addr = buf;
        i.size = len;
        return i;
    }

    static Inst
    done()
    {
        Inst i;
        i.op = Op::kDone;
        return i;
    }
};

} // namespace paralog

#endif // PARALOG_ISA_INST_HPP
